"""Tests for the multi-GPU extension (Section VI future work)."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, models_equal
from repro.ext.multigpu import MultiGpuGBDTTrainer


class TestTreeIdentity:
    @pytest.mark.parametrize("n_devices", [1, 2, 3, 4])
    def test_identical_to_single_gpu(self, covtype_small, n_devices):
        """Attribute sharding must not change the learned trees."""
        ds = covtype_small
        p = GBDTParams(n_trees=3, max_depth=4)
        single = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        multi = MultiGpuGBDTTrainer(p, n_devices=n_devices).fit(ds.X, ds.y)
        assert models_equal(multi, single)

    def test_identical_on_sparse_data(self, sparse_small):
        ds = sparse_small
        p = GBDTParams(n_trees=3, max_depth=3)
        single = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        multi = MultiGpuGBDTTrainer(p, n_devices=3).fit(ds.X, ds.y)
        assert models_equal(multi, single)

    def test_identical_without_rle(self, susy_small):
        ds = susy_small
        p = GBDTParams(n_trees=2, max_depth=4, use_rle=False)
        single = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        multi = MultiGpuGBDTTrainer(p, n_devices=2).fit(ds.X, ds.y)
        assert models_equal(multi, single)

    def test_identical_with_decompression_split(self, covtype_small):
        ds = covtype_small
        p = GBDTParams(n_trees=2, max_depth=3, use_direct_rle=False, rle_policy="always")
        single = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        multi = MultiGpuGBDTTrainer(p, n_devices=2).fit(ds.X, ds.y)
        assert models_equal(multi, single)


class TestScaling:
    def test_per_device_time_shrinks_with_devices(self, covtype_small):
        """The whole point of going multi-GPU: each device does ~1/k of the
        split-finding work."""
        ds = covtype_small
        p = GBDTParams(n_trees=2, max_depth=4)
        t1 = MultiGpuGBDTTrainer(p, n_devices=1, work_scale=ds.work_scale,
                                 row_scale=ds.row_scale)
        t1.fit(ds.X, ds.y)
        t4 = MultiGpuGBDTTrainer(p, n_devices=4, work_scale=ds.work_scale,
                                 row_scale=ds.row_scale)
        t4.fit(ds.X, ds.y)
        assert t4.elapsed_seconds() < t1.elapsed_seconds()

    def test_speedup_is_sublinear(self, covtype_small):
        """Communication (gradient broadcast, side-array broadcast) keeps
        scaling below ideal."""
        ds = covtype_small
        p = GBDTParams(n_trees=2, max_depth=4)
        times = {}
        for k in (1, 4):
            t = MultiGpuGBDTTrainer(p, n_devices=k, work_scale=ds.work_scale,
                                    row_scale=ds.row_scale)
            t.fit(ds.X, ds.y)
            times[k] = t.elapsed_seconds()
        assert 1.0 < times[1] / times[4] < 4.0

    def test_communication_recorded(self, covtype_small):
        ds = covtype_small
        t = MultiGpuGBDTTrainer(GBDTParams(n_trees=2, max_depth=3), n_devices=2)
        t.fit(ds.X, ds.y)
        names = {tr.name for dev in t.devices for tr in dev.ledger.transfers}
        assert "broadcast_gradients" in names
        assert "allreduce_best_splits" in names
        assert "broadcast_side_array" in names


class TestValidation:
    def test_at_least_one_device(self):
        with pytest.raises(ValueError):
            MultiGpuGBDTTrainer(n_devices=0)

    def test_more_devices_than_attributes(self, table1):
        """Sharding degrades gracefully when k > d (some shards are thin)."""
        X, y = table1
        p = GBDTParams(n_trees=2, max_depth=2)
        single = GPUGBDTTrainer(p).fit(X, y)
        multi = MultiGpuGBDTTrainer(p, n_devices=8).fit(X, y)
        assert models_equal(multi, single)

    def test_used_rle_flag(self, covtype_small):
        ds = covtype_small
        t = MultiGpuGBDTTrainer(GBDTParams(n_trees=1, max_depth=2), n_devices=2)
        t.fit(ds.X, ds.y)
        assert t.used_rle
