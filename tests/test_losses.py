"""Tests for repro.losses: derivative correctness, shapes, registry."""

import numpy as np
import pytest

from repro.losses import CustomLoss, LogisticLoss, SquaredErrorLoss, get_loss


class TestSquaredError:
    def test_gradients_match_paper_formula(self):
        """Section III-B: g = 2(yhat - y), h = 2 for MSE."""
        loss = SquaredErrorLoss()
        y = np.array([1.0, 0.0, 2.0])
        yhat = np.array([0.5, 0.5, 2.0])
        g, h = loss.gradients(y, yhat)
        assert np.allclose(g, [-1.0, 1.0, 0.0])
        assert np.allclose(h, [2.0, 2.0, 2.0])

    def test_gradients_match_numerical_derivative(self):
        loss = SquaredErrorLoss()
        rng = np.random.default_rng(0)
        y = rng.normal(size=50)
        yhat = rng.normal(size=50)
        g, h = loss.gradients(y, yhat)
        eps = 1e-6
        num_g = ((yhat + eps - y) ** 2 - (yhat - eps - y) ** 2) / (2 * eps)
        assert np.allclose(g, num_g, atol=1e-5)

    def test_value_is_mean_squared_error(self):
        loss = SquaredErrorLoss()
        assert loss.value(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(2.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            SquaredErrorLoss().gradients(np.zeros(3), np.zeros(4))

    def test_base_score_zero(self):
        assert SquaredErrorLoss().base_score(np.array([5.0, 6.0])) == 0.0

    def test_transform_identity(self):
        x = np.array([-1.0, 0.0, 3.0])
        assert np.array_equal(SquaredErrorLoss().transform(x), x)


class TestLogistic:
    def test_gradients_at_zero_margin(self):
        loss = LogisticLoss()
        g, h = loss.gradients(np.array([1.0, 0.0]), np.array([0.0, 0.0]))
        assert np.allclose(g, [-0.5, 0.5])
        assert np.allclose(h, [0.25, 0.25])

    def test_gradients_match_numerical_derivative(self):
        loss = LogisticLoss()
        rng = np.random.default_rng(1)
        y = (rng.random(40) > 0.5).astype(float)
        yhat = rng.normal(scale=2.0, size=40)
        g, h = loss.gradients(y, yhat)
        eps = 1e-5

        def val(m):
            p = 1 / (1 + np.exp(-m))
            p = np.clip(p, 1e-15, 1 - 1e-15)
            return -(y * np.log(p) + (1 - y) * np.log(1 - p))

        num_g = (val(yhat + eps) - val(yhat - eps)) / (2 * eps)
        assert np.allclose(g, num_g, atol=1e-4)

    def test_extreme_margins_are_stable(self):
        loss = LogisticLoss()
        g, h = loss.gradients(np.array([1.0, 0.0]), np.array([500.0, -500.0]))
        assert np.all(np.isfinite(g)) and np.all(np.isfinite(h))
        assert np.all(h > 0)

    def test_transform_is_sigmoid(self):
        out = LogisticLoss().transform(np.array([0.0]))
        assert out[0] == pytest.approx(0.5)

    def test_value_positive(self):
        loss = LogisticLoss()
        assert loss.value(np.array([1.0, 0.0]), np.array([0.0, 0.0])) > 0


class TestCustomLoss:
    def test_wraps_callables(self):
        loss = CustomLoss(grad_fn=lambda y, p: (p - y, np.ones_like(y)))
        g, h = loss.gradients(np.array([1.0]), np.array([3.0]))
        assert g[0] == 2.0 and h[0] == 1.0

    def test_requires_grad_fn(self):
        with pytest.raises(ValueError, match="grad_fn"):
            CustomLoss()

    def test_bad_shapes_from_grad_fn_raise(self):
        loss = CustomLoss(grad_fn=lambda y, p: (np.zeros(1), np.zeros(1)))
        with pytest.raises(ValueError, match="shaped like y"):
            loss.gradients(np.zeros(3), np.zeros(3))

    def test_value_fn_used(self):
        loss = CustomLoss(
            grad_fn=lambda y, p: (p - y, np.ones_like(y)),
            value_fn=lambda y, p: 42.0,
        )
        assert loss.value(np.zeros(2), np.zeros(2)) == 42.0


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("squared_error", SquaredErrorLoss),
        ("mse", SquaredErrorLoss),
        ("logistic", LogisticLoss),
        ("binary:logistic", LogisticLoss),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(get_loss(name), cls)

    def test_instance_passthrough(self):
        loss = SquaredErrorLoss()
        assert get_loss(loss) is loss

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("hinge")
