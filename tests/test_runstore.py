"""Run-store tests: envelopes, torn-file skip, diff, rolling gate, CLI.

The store is the longitudinal perf record, so the properties under test are
integrity ones: a submitted run reads back exactly, a torn file is skipped
(never trusted, never fatal), diffs key list metrics by name (stable under
workload reordering), and the rolling-baseline gate fails only on genuine
step changes -- attributed to the phase that moved.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import MetricsRegistry, use_registry
from repro.obs.history import build_history, sparkline
from repro.obs.runstore import (
    PHASES,
    RunStore,
    flatten_metrics,
    metric_direction,
)


def make_store(tmp_path, start=1000.0):
    """Deterministic store: injected clock and commit resolver."""
    state = {"t": start, "commit": "deadbeefcafe0123"}

    def clock():
        state["t"] += 60.0
        return state["t"]

    return RunStore(
        tmp_path / "runs",
        clock=clock,
        commit_resolver=lambda: state["commit"],
    ), state


def payload(on_s=1.0, speedup=2.0, find_split=0.6, split_node=0.2):
    return {
        "rows": [
            {
                "workload": "medium",
                "arena_on_s": on_s,
                "speedup": speedup,
                "identical_models": True,
            }
        ],
        "repeats": 3,
        "phases": {
            "setup": 0.1,
            "gradients": 0.1,
            "find_split": find_split,
            "split_node": split_node,
        },
    }


# ----------------------------------------------------------------- envelope
class TestEnvelope:
    def test_submit_round_trip(self, tmp_path):
        store, _ = make_store(tmp_path)
        rec = store.submit("hotpath", payload(), note="first")
        assert rec.run_id == "000001-deadbeefca"
        (loaded,) = store.runs("hotpath")
        assert loaded.run_id == rec.run_id
        assert loaded.commit == "deadbeefcafe0123"
        assert loaded.note == "first"
        assert loaded.metrics == payload()
        assert loaded.phases["find_split"] == pytest.approx(0.6)
        assert set(PHASES) == set(loaded.phases)

    def test_envelope_is_checksummed(self, tmp_path):
        store, _ = make_store(tmp_path)
        rec = store.submit("hotpath", payload())
        env = json.loads(rec.path.read_text())
        assert env["format"] == "repro-run-v1"
        import hashlib

        assert (
            hashlib.sha256(env["payload"].encode()).hexdigest() == env["checksum"]
        )

    def test_sequence_numbers_append(self, tmp_path):
        store, _ = make_store(tmp_path)
        ids = [store.submit("hotpath", payload()).run_id for _ in range(3)]
        assert [int(i.split("-")[0]) for i in ids] == [1, 2, 3]

    def test_bad_bench_name_rejected(self, tmp_path):
        store, _ = make_store(tmp_path)
        with pytest.raises(ValueError):
            store.submit("../escape", payload())


class TestTornFiles:
    def test_torn_file_skipped_and_counted(self, tmp_path):
        store, _ = make_store(tmp_path)
        good = store.submit("hotpath", payload(on_s=1.0))
        bad = store.submit("hotpath", payload(on_s=9.9))
        # tear the newest envelope mid-payload
        text = bad.path.read_text()
        bad.path.write_text(text[: len(text) // 2])
        registry = MetricsRegistry()
        with use_registry(registry):
            (latest,) = store.latest("hotpath", 1)
        assert latest.run_id == good.run_id
        assert (
            registry.counter("runstore_torn_skipped_total", "").value == 1
        )

    def test_checksum_mismatch_skipped(self, tmp_path):
        store, _ = make_store(tmp_path)
        rec = store.submit("hotpath", payload())
        env = json.loads(rec.path.read_text())
        env["payload"] = env["payload"].replace("1.0", "1.1", 1)
        rec.path.write_text(json.dumps(env))
        with use_registry(MetricsRegistry()):
            assert store.runs("hotpath") == []


# ------------------------------------------------------------------ algebra
class TestFlattenAndDirection:
    def test_list_elements_keyed_by_name(self):
        flat = flatten_metrics(payload())
        assert "rows[workload=medium].arena_on_s" in flat
        assert "phases.find_split" in flat
        # booleans are not metrics
        assert not any("identical" in k for k in flat)

    def test_keyed_paths_survive_reordering(self):
        a = {"rows": [{"workload": "a", "t_s": 1.0}, {"workload": "b", "t_s": 2.0}]}
        b = {"rows": [{"workload": "b", "t_s": 2.0}, {"workload": "a", "t_s": 1.0}]}
        assert flatten_metrics(a) == flatten_metrics(b)

    @pytest.mark.parametrize(
        "key,want",
        [
            ("rows[workload=medium].arena_on_s", "lower"),
            ("scaling[workers=4].comm_mb", "lower"),
            ("scaling[workers=4].comm_steps", "lower"),
            ("rows[workload=medium].speedup", "higher"),
            ("throughput_rows_per_s", "higher"),
            ("repeats", None),
            ("n_trees", None),
        ],
    )
    def test_direction_rules(self, key, want):
        assert metric_direction(key) == want


# --------------------------------------------------------------------- diff
class TestDiff:
    def test_diff_reports_moved_metrics(self, tmp_path):
        store, _ = make_store(tmp_path)
        a = store.submit("hotpath", payload(on_s=1.0, speedup=2.0))
        b = store.submit("hotpath", payload(on_s=1.5, speedup=1.4))
        deltas = store.diff(a, b)
        by_key = {d.key: d for d in deltas}
        slower = by_key["rows[workload=medium].arena_on_s"]
        assert slower.old == 1.0 and slower.new == 1.5
        assert slower.worse and slower.rel == pytest.approx(0.5)
        assert by_key["rows[workload=medium].speedup"].worse

    def test_get_by_index_and_prefix(self, tmp_path):
        store, _ = make_store(tmp_path)
        a = store.submit("hotpath", payload())
        b = store.submit("hotpath", payload())
        assert store.get("hotpath", "-1").run_id == b.run_id
        assert store.get("hotpath", "-2").run_id == a.run_id
        assert store.get("hotpath", "000001").run_id == a.run_id
        with pytest.raises(KeyError):
            store.get("hotpath", "nope")


# --------------------------------------------------------------------- gate
class TestGate:
    def seed_history(self, store, k=4):
        for _ in range(k):
            store.submit("hotpath", payload(on_s=1.0, speedup=2.0))

    def test_gate_passes_within_band(self, tmp_path):
        store, _ = make_store(tmp_path)
        self.seed_history(store)
        store.submit("hotpath", payload(on_s=1.1, speedup=1.9))  # within 25%
        report = store.gate("hotpath")
        assert report.ok and "PASS" in report.text

    def test_gate_fails_on_step_change_and_attributes_phase(self, tmp_path):
        store, _ = make_store(tmp_path)
        self.seed_history(store)
        with use_registry(MetricsRegistry()) as registry:
            # 80% slower, driven by find_split growing
            store.submit("hotpath", payload(on_s=1.8, find_split=1.4))
            report = store.gate("hotpath")
            assert not report.ok
            keys = [f.key for f in report.regressions]
            assert "rows[workload=medium].arena_on_s" in keys
            assert report.culprit_phase == "find_split"
            assert (
                registry.counter(
                    "runstore_gate_failures_total", "", bench="hotpath"
                ).value
                == 1
            )
        assert "FAIL" in report.text and "find_split" in report.text

    def test_gate_fails_on_speedup_collapse(self, tmp_path):
        store, _ = make_store(tmp_path)
        self.seed_history(store)
        store.submit("hotpath", payload(speedup=1.0))
        report = store.gate("hotpath")
        assert not report.ok
        assert any("speedup" in f.key for f in report.regressions)

    def test_gate_skips_without_history(self, tmp_path):
        store, _ = make_store(tmp_path)
        store.submit("hotpath", payload())
        report = store.gate("hotpath")
        assert report.ok and report.skipped

    def test_gate_uses_median_not_latest(self, tmp_path):
        """One noisy outlier in history must not move the baseline."""
        store, _ = make_store(tmp_path)
        for on_s in (1.0, 1.0, 5.0, 1.0):  # one spike
            store.submit("hotpath", payload(on_s=on_s))
        store.submit("hotpath", payload(on_s=1.1))
        assert store.gate("hotpath").ok


# ------------------------------------------------------------------ history
class TestHistory:
    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▄▄"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_build_history_and_html(self, tmp_path):
        store, _ = make_store(tmp_path)
        for on_s in (1.0, 1.2, 0.9):
            store.submit("hotpath", payload(on_s=on_s))
        rep = build_history(store)
        (bh,) = rep.benches
        assert bh.bench == "hotpath" and len(bh.runs) == 3
        row = next(
            r for r in bh.rows if r.key == "rows[workload=medium].arena_on_s"
        )
        assert row.values == [1.0, 1.2, 0.9]
        assert "hotpath" in rep.text and "▁" in rep.text or "█" in rep.text
        doc = rep.html()
        assert "<script" not in doc  # self-contained, zero JS
        assert "<svg" in doc and "var(--series-1)" in doc
        assert "prefers-color-scheme: dark" in doc
        assert "data table" in doc  # numeric table view always present


# ---------------------------------------------------------------------- CLI
class TestRunsCli:
    def write_bench(self, tmp_path, **kw):
        p = tmp_path / "BENCH_hotpath.json"
        p.write_text(json.dumps(payload(**kw)))
        return p

    def test_submit_diff_gate_end_to_end(self, tmp_path, capsys, monkeypatch):
        store_dir = str(tmp_path / "store")
        f = self.write_bench(tmp_path, on_s=1.0)
        for _ in range(3):
            assert (
                cli_main(
                    ["runs", "--store", store_dir, "submit", "--file", str(f)]
                )
                == 0
            )
        f2 = self.write_bench(tmp_path, on_s=1.9, find_split=1.5)
        assert (
            cli_main(["runs", "--store", store_dir, "submit", "--file", str(f2)])
            == 0
        )
        assert cli_main(["runs", "--store", store_dir, "list"]) == 0
        assert cli_main(["runs", "--store", store_dir, "diff", "-2", "-1"]) == 0
        rc = cli_main(["runs", "--store", store_dir, "gate"])
        out = capsys.readouterr().out
        assert rc == 1 and "FAIL" in out and "find_split" in out
        # REPRO_SKIP_PERF honors CI's noisy-runner escape hatch
        monkeypatch.setenv("REPRO_SKIP_PERF", "1")
        assert cli_main(["runs", "--store", store_dir, "gate"]) == 0

    def test_submit_missing_file_errors(self, tmp_path):
        rc = cli_main(
            [
                "runs",
                "--store",
                str(tmp_path / "store"),
                "submit",
                "--file",
                str(tmp_path / "absent.json"),
            ]
        )
        assert rc == 2

    def test_obs_history_cli(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        f = self.write_bench(tmp_path)
        for _ in range(2):
            cli_main(["runs", "--store", store_dir, "submit", "--file", str(f)])
        html = tmp_path / "hist.html"
        rc = cli_main(
            ["obs", "history", "--store", store_dir, "--html", str(html)]
        )
        out = capsys.readouterr().out
        assert rc == 0 and "hotpath" in out
        assert html.is_file() and "<svg" in html.read_text()
