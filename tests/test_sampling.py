"""Tests for stochastic GBM: the shared per-tree sampler and both trainers."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, models_equal
from repro.core.sampling import sample_tree
from repro.cpu.exact_greedy import ReferenceTrainer
from repro.metrics import rmse


class TestSampler:
    def test_trivial_sample(self):
        s = sample_tree(0, 0, 10, 4, 1.0, 1.0)
        assert s.is_trivial
        assert s.inst_mask.all()
        assert list(s.attrs) == [0, 1, 2, 3]

    def test_deterministic_per_seed_and_tree(self):
        a = sample_tree(7, 3, 100, 10, 0.5, 0.5)
        b = sample_tree(7, 3, 100, 10, 0.5, 0.5)
        assert np.array_equal(a.inst_mask, b.inst_mask)
        assert np.array_equal(a.attrs, b.attrs)

    def test_different_trees_differ(self):
        a = sample_tree(7, 0, 100, 10, 0.5, 1.0)
        b = sample_tree(7, 1, 100, 10, 0.5, 1.0)
        assert not np.array_equal(a.inst_mask, b.inst_mask)

    def test_rates_respected(self):
        s = sample_tree(1, 0, 1000, 20, 0.3, 0.25)
        assert s.n_included == 300
        assert s.attrs.size == 5
        assert list(s.attrs) == sorted(s.attrs)

    def test_minimums(self):
        s = sample_tree(1, 0, 4, 3, 0.01, 0.01)
        assert s.n_included >= 2
        assert s.attrs.size >= 1

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            sample_tree(1, 0, 10, 2, 0.0, 1.0)
        with pytest.raises(ValueError):
            sample_tree(1, 0, 10, 2, 1.0, 1.5)


class TestStochasticTraining:
    def test_gpu_matches_reference_with_sampling(self, covtype_small):
        """The identical-trees property extends to stochastic runs because
        both trainers consume the same deterministic draw."""
        ds = covtype_small
        p = GBDTParams(n_trees=4, max_depth=3, subsample=0.6, colsample_bytree=0.5, seed=11)
        a = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        b = ReferenceTrainer(p).fit(ds.X, ds.y)
        assert models_equal(a, b)

    def test_sampling_changes_trees(self, covtype_small):
        ds = covtype_small
        full = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3)).fit(ds.X, ds.y)
        sub = GPUGBDTTrainer(
            GBDTParams(n_trees=3, max_depth=3, subsample=0.5)
        ).fit(ds.X, ds.y)
        assert not models_equal(full, sub)

    def test_root_counts_reflect_subsample(self, covtype_small):
        ds = covtype_small
        p = GBDTParams(n_trees=2, max_depth=2, subsample=0.5)
        model = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        n = ds.X.n_rows
        for t in model.trees:
            assert t.n_instances[0] == max(2, int(round(n * 0.5)))

    def test_colsample_restricts_attributes(self, covtype_small):
        ds = covtype_small
        p = GBDTParams(n_trees=3, max_depth=3, colsample_bytree=0.2, seed=5)
        model = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        for t_idx, t in enumerate(model.trees):
            allowed = set(
                sample_tree(5, t_idx, ds.X.n_rows, ds.X.n_cols, 1.0, 0.2).attrs.tolist()
            )
            used = {a for a in t.attr if a >= 0}
            assert used <= allowed

    def test_excluded_rows_still_predicted(self, susy_small):
        """yhat accumulates the tree for out-of-sample rows too, so the
        next round's gradients are consistent with full prediction."""
        ds = susy_small
        p = GBDTParams(n_trees=5, max_depth=3, subsample=0.7, seed=2)
        trainer = GPUGBDTTrainer(p)
        model = trainer.fit(ds.X, ds.y)
        # boosting still reduces error over ALL rows, not just sampled ones
        staged = model.staged_predict(ds.X)
        assert rmse(ds.y, staged[-1]) < rmse(ds.y, staged[0])

    def test_seed_reproducibility(self, covtype_small):
        ds = covtype_small
        p = GBDTParams(n_trees=3, max_depth=3, subsample=0.6, seed=9)
        a = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        b = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        assert models_equal(a, b)

    def test_sampling_with_rle_paths(self, covtype_small):
        ds = covtype_small
        p = GBDTParams(
            n_trees=3, max_depth=3, subsample=0.7, rle_policy="always", seed=4
        )
        a = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        b = ReferenceTrainer(p).fit(ds.X, ds.y)
        assert models_equal(a, b)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            GBDTParams(subsample=0.0)
        with pytest.raises(ValueError):
            GBDTParams(colsample_bytree=1.0001)
