"""Differential tests for distributed data-parallel training.

The load-bearing property of ``repro.dist``: sharding rows across W workers
must not change anything observable -- global quantile cuts from merged
sketches equal the single-process cuts exactly, and the W-worker model is
byte-identical (serialized JSON) to the single-process histogram trainer
for any W, under both comms backends, with or without an injected crash.
"""

import numpy as np
import pytest

from repro import GBDTParams
from repro.approx.histogram_trainer import HistogramGBDTTrainer
from repro.approx.quantile import (
    build_bins,
    build_bins_from_sketches,
    merge_sketches,
    sketch_columns,
)
from repro.data import make_dataset
from repro.data.sorted_columns import build_sorted_columns
from repro.dist import DistributedHistTrainer, FaultPlan, WorkerFailure
from repro.obs import MetricsRegistry, use_registry
from repro.pipeline.checkpoint import model_digest

from tests.conftest import random_csr

PARAMS = GBDTParams(n_trees=4, max_depth=4, seed=7)
MAX_BINS = 32


def _single_model(ds, max_bins=MAX_BINS, params=PARAMS):
    return HistogramGBDTTrainer(params, max_bins=max_bins).fit(ds.X, ds.y)


# --------------------------------------------------------------------- cuts
class TestSketchMerge:
    def _global_and_merged(self, X, shard_splits, max_bins):
        global_spec = build_bins(build_sorted_columns(X.to_csc()), max_bins)
        idx = np.arange(X.shape[0], dtype=np.int64)
        per_shard = [
            sketch_columns(build_sorted_columns(X.select_rows(part).to_csc()))
            for part in np.split(idx, shard_splits)
        ]
        merged = [
            merge_sketches([shard[j] for shard in per_shard])
            for j in range(X.shape[1])
        ]
        return global_spec, build_bins_from_sketches(merged, max_bins)

    @pytest.mark.parametrize("max_bins", [2, 3, 8, 64, 256])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_duplicate_heavy_columns(self, max_bins, n_shards):
        rng = np.random.default_rng(5)
        X = random_csr(rng, 211, 6, density=0.8, levels=9)  # many ties
        splits = (np.arange(1, n_shards) * 211) // n_shards
        global_spec, merged_spec = self._global_and_merged(X, splits, max_bins)
        for j in range(X.shape[1]):
            np.testing.assert_array_equal(
                global_spec.edges[j], merged_spec.edges[j]
            )

    def test_skewed_sharding_with_empty_columns(self):
        rng = np.random.default_rng(9)
        X = random_csr(rng, 180, 5, density=0.4, levels=4)
        # pathological split: 3-row shard, then a huge one, then the rest
        global_spec, merged_spec = self._global_and_merged(X, [3, 170], 16)
        for j in range(X.shape[1]):
            np.testing.assert_array_equal(
                global_spec.edges[j], merged_spec.edges[j]
            )


# -------------------------------------------------------------- byte identity
class TestByteIdentity:
    @pytest.mark.parametrize("backend", ["sim", "threaded"])
    @pytest.mark.parametrize("w", [1, 2, 4])
    def test_matches_single_process(self, covtype_small, backend, w):
        ds = covtype_small
        reference = _single_model(ds).to_json()
        trainer = DistributedHistTrainer(
            PARAMS, n_workers=w, max_bins=MAX_BINS, backend=backend
        )
        model = trainer.fit(ds.X, ds.y)
        assert model.to_json() == reference
        assert trainer.recoveries == 0

    def test_skewed_data_distribution(self):
        """Sorted labels: each shard sees a disjoint slice of the response."""
        ds = make_dataset("susy", run_rows=240, seed=2)
        order = np.argsort(ds.y, kind="stable").astype(np.int64)
        X, y = ds.X.select_rows(order), ds.y[order]
        reference = HistogramGBDTTrainer(PARAMS, max_bins=MAX_BINS).fit(X, y)
        trainer = DistributedHistTrainer(PARAMS, n_workers=4, max_bins=MAX_BINS)
        model = trainer.fit(X, y)
        assert model.to_json() == reference.to_json()

    def test_more_workers_than_rows_clamps(self):
        ds = make_dataset("covtype", run_rows=8, seed=1)
        trainer = DistributedHistTrainer(
            GBDTParams(n_trees=2, max_depth=2, seed=7),
            n_workers=16,
            max_bins=8,
        )
        model = trainer.fit(ds.X, ds.y)
        single = HistogramGBDTTrainer(
            GBDTParams(n_trees=2, max_depth=2, seed=7), max_bins=8
        ).fit(ds.X, ds.y)
        assert model.to_json() == single.to_json()


# ------------------------------------------------------------ fault recovery
class TestCrashRecovery:
    @pytest.mark.parametrize("backend", ["sim", "threaded"])
    def test_kill_worker_recovers_to_identical_digest(
        self, covtype_small, backend, tmp_path
    ):
        ds = covtype_small
        reference = _single_model(ds)
        trainer = DistributedHistTrainer(
            PARAMS,
            n_workers=4,
            max_bins=MAX_BINS,
            backend=backend,
            faults=FaultPlan(kill_rank=2, kill_round=2),
            checkpoint_dir=tmp_path,
        )
        model = trainer.fit(ds.X, ds.y)
        assert model_digest(model) == model_digest(reference)
        assert model.to_json() == reference.to_json()
        assert trainer.recoveries == 1
        first, second = trainer.attempts_
        assert (first.workers, first.failed_ranks) == (4, [2])
        assert second.workers == 3 and second.failed_ranks == []
        assert second.resumed_round == 2  # restored the round-2 checkpoint

    def test_crash_before_any_checkpoint_restarts_from_scratch(
        self, covtype_small, tmp_path
    ):
        ds = covtype_small
        reference = _single_model(ds)
        trainer = DistributedHistTrainer(
            PARAMS,
            n_workers=3,
            max_bins=MAX_BINS,
            faults=FaultPlan(kill_rank=0, kill_round=0),
            checkpoint_dir=tmp_path,
        )
        model = trainer.fit(ds.X, ds.y)
        assert model.to_json() == reference.to_json()
        assert trainer.attempts_[1].resumed_round == 0

    def test_crash_without_checkpoint_dir_still_recovers(self, covtype_small):
        ds = covtype_small
        trainer = DistributedHistTrainer(
            PARAMS,
            n_workers=2,
            max_bins=MAX_BINS,
            faults=FaultPlan(kill_rank=1, kill_round=1),
        )
        model = trainer.fit(ds.X, ds.y)
        assert model.to_json() == _single_model(ds).to_json()

    def test_sole_worker_death_is_fatal(self, covtype_small):
        ds = covtype_small
        trainer = DistributedHistTrainer(
            PARAMS,
            n_workers=1,
            max_bins=MAX_BINS,
            faults=FaultPlan(kill_rank=0, kill_round=0),
        )
        with pytest.raises(WorkerFailure):
            trainer.fit(ds.X, ds.y)

    def test_straggler_does_not_change_model(self, covtype_small):
        ds = covtype_small
        trainer = DistributedHistTrainer(
            PARAMS,
            n_workers=3,
            max_bins=MAX_BINS,
            faults=FaultPlan(straggler_rank=1, straggler_delay_s=0.01),
        )
        model = trainer.fit(ds.X, ds.y)
        assert model.to_json() == _single_model(ds).to_json()
        assert trainer.comm_stats_[1].wait_s >= 0.01 * PARAMS.n_trees


# ------------------------------------------------- subtraction comm volume
class TestSubtractionCommVolume:
    """Sibling subtraction must shrink the histogram allreduce by exactly
    the smaller-child fraction: at every level past the root only half the
    sibling tables are reduced, so the saved payload is, in
    ``test_ext_comm_accounting`` style, a closed-form replay of the grown
    trees:

        saved = sum over trees and levels L >= 1 of
                3 * total_bins * 8 * (n_active(L) / 2) * 2 * (W - 1)

    (three int64 tables per level; the simulated ring allreduce charges
    ``nbytes * 2(W-1)/W`` per rank, summed over W ranks).  n_active(L) is
    the node count at depth L of the final tree -- exact because levels are
    entered iff nodes exist there and siblings always arrive in pairs.
    Every other collective (sketches, root sums, shift max) is identical in
    both runs and cancels in the difference.
    """

    W = 3

    def _fit(self, ds, use_subtraction):
        registry = MetricsRegistry()
        with use_registry(registry):
            trainer = DistributedHistTrainer(
                PARAMS,
                n_workers=self.W,
                max_bins=MAX_BINS,
                use_subtraction=use_subtraction,
            )
            model = trainer.fit(ds.X, ds.y)
        counter = registry.get(
            "collective_bytes_total", backend="sim", op="allreduce"
        )
        return model, trainer, counter.value

    def test_counter_drop_matches_analytic_formula(self, covtype_small):
        ds = covtype_small
        model_on, t_on, bytes_on = self._fit(ds, True)
        model_off, t_off, bytes_off = self._fit(ds, False)
        assert model_on.to_json() == model_off.to_json()

        single = HistogramGBDTTrainer(PARAMS, max_bins=MAX_BINS)
        single.fit(ds.X, ds.y)
        spec = single.bins_
        total_bins = sum(spec.n_bins(j) for j in range(ds.X.shape[1]))

        saved = 0.0
        for tree in model_on.trees:
            depths = np.asarray(tree.depth)
            for lvl in range(1, PARAMS.max_depth):
                n_active = int((depths == lvl).sum())
                if n_active == 0:
                    break
                assert n_active % 2 == 0
                saved += 3 * total_bins * 8 * (n_active / 2) * 2 * (self.W - 1)

        assert saved > 0, "no level ever subtracted -- workload too shallow"
        assert bytes_off - bytes_on == pytest.approx(saved, rel=1e-9)
        # the same saving shows in the per-rank CollectiveStats ledgers
        assert t_off.comm_bytes() - t_on.comm_bytes() == pytest.approx(
            saved, rel=1e-9
        )

    def test_reduction_is_roughly_half_of_histogram_traffic(self, covtype_small):
        """Sanity on magnitude: the histogram share of allreduce traffic
        drops by ~50% (never more, never trivially little)."""
        ds = covtype_small
        _, _, bytes_on = self._fit(ds, True)
        _, _, bytes_off = self._fit(ds, False)
        ratio = bytes_on / bytes_off
        assert 0.5 <= ratio < 0.9
