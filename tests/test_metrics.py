"""Tests for repro.metrics."""

import numpy as np
import pytest

from repro.metrics import accuracy, error_rate, mean_abs_error, mse, rmse


def test_mse_basic():
    assert mse(np.array([1.0, 2.0]), np.array([1.0, 0.0])) == pytest.approx(2.0)


def test_rmse_is_sqrt_mse():
    y = np.array([3.0, -1.0, 2.0])
    p = np.array([0.0, 0.0, 0.0])
    assert rmse(y, p) == pytest.approx(np.sqrt(mse(y, p)))


def test_rmse_zero_for_perfect_predictions():
    y = np.linspace(0, 1, 10)
    assert rmse(y, y) == 0.0


def test_mean_abs_error():
    assert mean_abs_error(np.array([1.0, -1.0]), np.array([0.0, 0.0])) == pytest.approx(1.0)


def test_error_rate_thresholding():
    y = np.array([0.0, 1.0, 1.0, 0.0])
    p = np.array([0.2, 0.9, 0.4, 0.6])  # last two wrong
    assert error_rate(y, p) == pytest.approx(0.5)


def test_accuracy_complements_error_rate():
    y = np.array([0.0, 1.0])
    p = np.array([0.9, 0.9])
    assert accuracy(y, p) + error_rate(y, p) == pytest.approx(1.0)


def test_custom_threshold():
    y = np.array([0.0, 1.0])
    p = np.array([0.4, 0.4])
    assert error_rate(y, p, threshold=0.3) == pytest.approx(0.5)


def test_shape_mismatch_raises():
    with pytest.raises(ValueError, match="shape mismatch"):
        rmse(np.zeros(2), np.zeros(3))


def test_empty_raises():
    with pytest.raises(ValueError, match="empty"):
        mse(np.array([]), np.array([]))


def test_flattening_of_2d_inputs():
    y = np.array([[1.0], [2.0]])
    p = np.array([1.0, 2.0])
    assert rmse(y, p) == 0.0
