"""Crash-safety tests for the checkpoint store and atomic writer.

Fault injection at every step of the atomic write proves a kill never
leaves a partial destination file; checksum and params guards prove a
loader can trust what it reads.
"""

import json

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer
from repro.ioutil import SimulatedCrash, atomic_write_text
from repro.pipeline import (
    CheckpointCorrupt,
    CheckpointMismatch,
    CheckpointStore,
    load_checkpoint,
    model_digest,
    params_digest,
)


@pytest.fixture
def model(covtype_small):
    return GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3, seed=13)).fit(
        covtype_small.X, covtype_small.y
    )


@pytest.fixture
def params():
    return GBDTParams(n_trees=3, max_depth=3, seed=13)


# ------------------------------------------------------------ atomic writes
class TestAtomicWrite:
    def test_writes_and_returns_path(self, tmp_path):
        out = atomic_write_text(tmp_path / "f.txt", "hello")
        assert out.read_text(encoding="utf-8") == "hello"

    @pytest.mark.parametrize("kill_step", ["begin", "written", "synced"])
    def test_kill_before_rename_leaves_old_content(self, tmp_path, kill_step):
        dest = tmp_path / "f.txt"
        dest.write_text("old", encoding="utf-8")

        def hook(step):
            if step == kill_step:
                raise SimulatedCrash(step)

        with pytest.raises(SimulatedCrash):
            atomic_write_text(dest, "new", fault_hook=hook)
        # the destination is untouched; at most an orphaned tmp remains
        assert dest.read_text(encoding="utf-8") == "old"
        leftovers = [p.name for p in tmp_path.iterdir() if p != dest]
        assert all(name.endswith(".tmp") for name in leftovers)

    def test_kill_after_rename_leaves_new_content(self, tmp_path):
        dest = tmp_path / "f.txt"
        dest.write_text("old", encoding="utf-8")

        def hook(step):
            if step == "renamed":
                raise SimulatedCrash(step)

        with pytest.raises(SimulatedCrash):
            atomic_write_text(dest, "new", fault_hook=hook)
        assert dest.read_text(encoding="utf-8") == "new"

    def test_ordinary_error_cleans_tmp(self, tmp_path):
        def hook(step):
            if step == "written":
                raise RuntimeError("disk quota")

        with pytest.raises(RuntimeError):
            atomic_write_text(tmp_path / "f.txt", "x", fault_hook=hook)
        assert list(tmp_path.iterdir()) == []


# ------------------------------------------------------------- load guards
class TestLoadGuards:
    def test_round_trip(self, tmp_path, model, params):
        store = CheckpointStore(tmp_path)
        written = store.save(model, params, meta={"phase": "test"})
        ck = load_checkpoint(written.path, params=params)
        assert ck.round == model.n_trees
        assert ck.meta == {"phase": "test"}
        assert ck.model_digest == model_digest(model)
        restored = ck.restore_model(params)
        assert restored.to_json() == model.to_json()

    def test_truncated_file_is_corrupt(self, tmp_path, model, params):
        store = CheckpointStore(tmp_path)
        path = store.save(model, params).path
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)

    def test_flipped_payload_fails_checksum(self, tmp_path, model, params):
        store = CheckpointStore(tmp_path)
        path = store.save(model, params).path
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["payload"] = envelope["payload"].replace('"round":', '"r0und":', 1)
        path.write_text(json.dumps(envelope), encoding="utf-8")
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            load_checkpoint(path)

    def test_unknown_format_is_corrupt(self, tmp_path):
        path = tmp_path / "ckpt-000001.json"
        path.write_text('{"format": "other", "checksum": "", "payload": ""}')
        with pytest.raises(CheckpointCorrupt, match="format"):
            load_checkpoint(path)

    def test_params_mismatch_refused(self, tmp_path, model, params):
        store = CheckpointStore(tmp_path)
        path = store.save(model, params).path
        with pytest.raises(CheckpointMismatch):
            load_checkpoint(path, params=params.replace(max_depth=5))

    def test_n_trees_excluded_from_digest(self, params):
        """``n_trees`` budgets rounds, it does not shape trees: resuming with
        a different budget must be allowed."""
        assert params_digest(params) == params_digest(params.replace(n_trees=99))
        assert params_digest(params) != params_digest(params.replace(seed=1))


# ----------------------------------------------------------------- recovery
class TestStoreRecovery:
    def test_latest_skips_corrupt_and_recovers(self, tmp_path, model, params):
        store = CheckpointStore(tmp_path)
        store.save(model, params, round_=1)
        store.save(model, params, round_=2)
        # a torn write at round 3, as a kill mid-write would leave
        store.path_for(3).write_text('{"format": "repro-ckpt-v1", "chec')
        ck = store.latest(params)
        assert ck is not None and ck.round == 2

    def test_latest_none_when_empty(self, tmp_path, params):
        assert CheckpointStore(tmp_path).latest(params) is None

    def test_latest_propagates_mismatch(self, tmp_path, model, params):
        store = CheckpointStore(tmp_path)
        store.save(model, params)
        with pytest.raises(CheckpointMismatch):
            store.latest(params.replace(learning_rate=0.01))

    def test_save_with_fault_hook_keeps_previous(self, tmp_path, model, params):
        store = CheckpointStore(tmp_path)
        store.save(model, params, round_=1)

        def hook(step):
            if step == "synced":
                raise SimulatedCrash("kill")

        with pytest.raises(SimulatedCrash):
            store.save(model, params, round_=2, fault_hook=hook)
        ck = store.latest(params)
        assert ck is not None and ck.round == 1

    def test_prune_keeps_newest_and_clears_tmp(self, tmp_path, model, params):
        store = CheckpointStore(tmp_path)
        for r in range(1, 6):
            store.save(model, params, round_=r)
        (tmp_path / "ckpt-000002.json.abc.tmp").write_text("orphan")
        removed = store.prune(keep_last=2)
        assert removed == 3
        assert store.rounds() == [4, 5]
        assert not list(tmp_path.glob("*.tmp"))


# ------------------------------------------------- resume == uninterrupted
def test_resume_from_checkpoint_matches_uninterrupted(tmp_path, covtype_small):
    """Kill after round k, resume from the checkpoint, finish: the final
    digest equals an uninterrupted run's."""
    ds = covtype_small
    params = GBDTParams(n_trees=5, max_depth=3, seed=13)
    store = CheckpointStore(tmp_path)

    uninterrupted = GPUGBDTTrainer(params).fit(ds.X, ds.y)

    model = None
    for r in range(1, 4):  # rounds 1..3, then "crash"
        model = GPUGBDTTrainer(params.replace(n_trees=1)).fit(
            ds.X, ds.y, init_model=model
        )
        store.save(model, params)

    ck = store.latest(params)
    resumed = ck.restore_model(params)
    remaining = params.n_trees - ck.round
    resumed = GPUGBDTTrainer(params.replace(n_trees=remaining)).fit(
        ds.X, ds.y, init_model=resumed
    )
    assert model_digest(resumed) == model_digest(uninterrupted)
    assert resumed.to_json() == uninterrupted.to_json()
    assert np.array_equal(
        resumed.predict(ds.X_test), uninterrupted.predict(ds.X_test)
    )
