"""Differential tests: the flattened batch predictor vs the per-row oracle.

The serving path must be a pure re-layout, never a re-interpretation: for
every model shape we can build -- randomized structures, missing values,
``default_left`` on both branches, stumps, empty ensembles -- and every input
container (``np.ndarray``, ``DenseMatrix``, ``CSRMatrix``), the
:class:`~repro.serve.FlatEnsemble` must agree with ``predict_row`` (the
scalar oracle) and with the existing vectorized ``DecisionTree.predict``
to 1e-6.
"""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer
from repro.core.booster_model import GBDTModel
from repro.core.tree import DecisionTree
from repro.data.matrix import CSRMatrix, DenseMatrix
from repro.serve import FlatEnsemble

TOL = 1e-6


# --------------------------------------------------------------- generators
def random_tree(rng: np.random.Generator, n_features: int, max_depth: int) -> DecisionTree:
    """A random tree with splits, thresholds and default directions drawn
    fresh -- covers shapes the trainers rarely produce (unbalanced, deep,
    stumpy, default-left and default-right mixed)."""
    tree = DecisionTree()
    root = tree.add_root(n_instances=1)
    frontier = [root]
    while frontier:
        nid = frontier.pop()
        depth = tree.depth[nid]
        if depth < max_depth and rng.random() < 0.7:
            lid, rid = tree.split_node(
                nid,
                attr=int(rng.integers(0, n_features)),
                threshold=float(rng.normal()),
                default_left=bool(rng.random() < 0.5),
                gain=float(rng.random()),
            )
            frontier += [lid, rid]
        else:
            tree.set_leaf(nid, float(rng.normal()))
    return tree


def random_model(
    rng: np.random.Generator, n_trees: int, n_features: int, max_depth: int
) -> GBDTModel:
    trees = [random_tree(rng, n_features, max_depth) for _ in range(n_trees)]
    return GBDTModel(trees=trees, params=GBDTParams(), base_score=float(rng.normal()))


def random_inputs(rng: np.random.Generator, n: int, d: int, missing_rate: float):
    """The same logical rows as dense-with-nan, DenseMatrix and CSR."""
    dense = rng.normal(size=(n, d))
    dense[rng.random((n, d)) < missing_rate] = np.nan
    mask = ~np.isnan(dense)
    indptr = np.concatenate(([0], np.cumsum(mask.sum(axis=1)))).astype(np.int64)
    csr = CSRMatrix(indptr, np.nonzero(mask)[1].astype(np.int64), dense[mask], n_cols=d)
    return dense, DenseMatrix(dense.copy()), csr


def oracle_predict(model: GBDTModel, dense: np.ndarray) -> np.ndarray:
    """Scalar reference: base score plus ``predict_row`` over every tree."""
    out = np.full(dense.shape[0], model.base_score)
    cols = np.arange(dense.shape[1])
    for i, row in enumerate(dense):
        present = ~np.isnan(row)
        for tree in model.trees:
            out[i] += tree.predict_row(cols[present], row[present])
    return out


def per_tree_predict(model: GBDTModel, X) -> np.ndarray:
    """The legacy vectorized path: explicit Python loop over trees."""
    if isinstance(X, CSRMatrix):
        X = X.to_dense(fill=np.nan).values
    elif isinstance(X, DenseMatrix):
        X = X.values
    out = np.full(X.shape[0], model.base_score)
    for tree in model.trees:
        out += tree.predict(X)
    return out


# ------------------------------------------------------------- randomized
@pytest.mark.parametrize("seed", range(8))
def test_random_models_match_oracle_everywhere(seed):
    rng = np.random.default_rng(seed)
    d = int(rng.integers(3, 12))
    model = random_model(
        rng,
        n_trees=int(rng.integers(1, 12)),
        n_features=d,
        max_depth=int(rng.integers(1, 7)),
    )
    flat = FlatEnsemble.from_model(model, n_features=d)
    dense, dm, csr = random_inputs(rng, n=int(rng.integers(1, 60)), d=d,
                                   missing_rate=float(rng.choice([0.0, 0.2, 0.6])))
    expected = oracle_predict(model, dense)
    for X in (dense, dm, csr):
        got = flat.predict(X)
        assert np.allclose(got, expected, atol=TOL, rtol=0), type(X).__name__
        assert np.allclose(got, per_tree_predict(model, X), atol=TOL, rtol=0)


@pytest.mark.parametrize("missing_rate", [0.0, 0.35, 0.95])
def test_default_direction_respected(missing_rate):
    """Both default directions appear and missing cells follow them."""
    rng = np.random.default_rng(99)
    model = random_model(rng, n_trees=8, n_features=6, max_depth=5)
    directions = {
        bool(t.default_left[n])
        for t in model.trees
        for n in range(t.n_nodes)
        if t.left[n] != -1
    }
    assert directions == {True, False}, "generator must cover both defaults"
    dense, _, csr = random_inputs(rng, n=40, d=6, missing_rate=missing_rate)
    expected = oracle_predict(model, dense)
    flat = FlatEnsemble.from_model(model, n_features=6)
    assert np.allclose(flat.predict(dense), expected, atol=TOL, rtol=0)
    assert np.allclose(flat.predict(csr), expected, atol=TOL, rtol=0)


def test_all_missing_row_routes_by_defaults_only():
    rng = np.random.default_rng(5)
    model = random_model(rng, n_trees=5, n_features=4, max_depth=4)
    flat = FlatEnsemble.from_model(model, n_features=4)
    dense = np.full((3, 4), np.nan)
    expected = oracle_predict(model, dense)
    assert np.allclose(flat.predict(dense), expected, atol=TOL, rtol=0)
    empty_csr = CSRMatrix(np.zeros(4, dtype=np.int64), np.empty(0, dtype=np.int64),
                          np.empty(0), n_cols=4)
    assert np.allclose(flat.predict(empty_csr), expected, atol=TOL, rtol=0)


# ------------------------------------------------------------- edge cases
def test_empty_ensemble_is_base_score():
    flat = FlatEnsemble.from_trees([], base_score=0.75, n_features=3)
    X = np.zeros((5, 3))
    assert np.allclose(flat.predict(X), 0.75)
    assert flat.predict_one(X[0]) == pytest.approx(0.75)


def test_stump_ensemble():
    stump = DecisionTree()
    stump.add_root()
    stump.set_leaf(0, -0.5)
    flat = FlatEnsemble.from_trees([stump, stump, stump], base_score=0.1, n_features=2)
    X = np.array([[1.0, np.nan], [np.nan, np.nan]])
    assert np.allclose(flat.predict(X), 0.1 - 1.5)


def test_zero_rows():
    rng = np.random.default_rng(0)
    flat = FlatEnsemble.from_model(random_model(rng, 3, 4, 3), n_features=4)
    out = flat.predict(np.empty((0, 4)))
    assert out.shape == (0,)


def test_explicit_zero_is_a_real_value_in_csr():
    """A stored 0.0 must route by comparison, not by default direction."""
    tree = DecisionTree()
    tree.add_root()
    left, right = tree.split_node(0, attr=0, threshold=-1.0, default_left=False, gain=1.0)
    tree.set_leaf(left, 10.0)   # v > -1
    tree.set_leaf(right, 20.0)  # v <= -1 or missing (default right)
    flat = FlatEnsemble.from_trees([tree], n_features=1)
    csr = CSRMatrix.from_rows([[(0, 0.0)], []], n_cols=1)
    assert np.allclose(flat.predict(csr), [10.0, 20.0])


def test_from_dict_roundtrip_and_scrambled_node_order():
    """BFS renumbering makes flat layout independent of source node order."""
    rng = np.random.default_rng(17)
    model = random_model(rng, n_trees=4, n_features=5, max_depth=4)
    # round-trip through the JSON payload (what the registry serves)
    clone = GBDTModel.from_json(model.to_json())
    clone.base_score = model.base_score
    flat = FlatEnsemble.from_model(clone, n_features=5)
    dense, _, _ = random_inputs(rng, n=30, d=5, missing_rate=0.3)
    assert np.allclose(flat.predict(dense), oracle_predict(model, dense), atol=TOL, rtol=0)


def test_unreachable_node_rejected():
    tree = DecisionTree()
    tree.add_root()
    tree.split_node(0, attr=0, threshold=0.0, default_left=True, gain=1.0)
    orphaned = tree.to_dict()
    for key in orphaned:
        orphaned[key] = orphaned[key] + orphaned[key][-1:]  # dangling extra node
    with pytest.raises(ValueError, match="unreachable"):
        FlatEnsemble.from_trees([DecisionTree.from_dict(orphaned)])


# --------------------------------------------------------- trained models
@pytest.mark.parametrize("fixture", ["susy_small", "sparse_small"])
def test_trained_models_differential(fixture, request):
    ds = request.getfixturevalue(fixture)
    model = GPUGBDTTrainer(GBDTParams(n_trees=6, max_depth=4)).fit(ds.X, ds.y)
    flat = model.flatten()
    dense = ds.X_test.to_dense(fill=np.nan).values
    expected = oracle_predict(model, dense)
    assert np.allclose(flat.predict(ds.X_test), expected, atol=TOL, rtol=0)
    assert np.allclose(flat.predict(dense), expected, atol=TOL, rtol=0)
    assert np.allclose(
        model.predict(ds.X_test), per_tree_predict(model, ds.X_test), atol=TOL, rtol=0
    )


def test_flat_dispatch_in_model_predict_matches_loop(susy_small):
    """GBDTModel.predict's large-batch flat dispatch equals the tree loop."""
    ds = susy_small
    model = GPUGBDTTrainer(GBDTParams(n_trees=8, max_depth=4)).fit(ds.X, ds.y)
    big = np.repeat(ds.X_test.to_dense(fill=np.nan).values, 20, axis=0)
    assert big.shape[0] * model.n_trees >= GBDTModel._FLAT_MIN_PAIRS
    assert np.allclose(model.predict(big), per_tree_predict(model, big), atol=TOL, rtol=0)


def test_flatten_cache_invalidates_on_model_growth(susy_small):
    ds = susy_small
    model = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3)).fit(ds.X, ds.y)
    first = model.flatten()
    assert model.flatten() is first  # cached
    extra = GPUGBDTTrainer(GBDTParams(n_trees=1, max_depth=3)).fit(ds.X, ds.y)
    model.trees.append(extra.trees[0])
    assert model.flatten() is not first
    assert model.flatten().n_trees == 4


def test_predict_one_and_predict_row_agree(sparse_small):
    ds = sparse_small
    model = GPUGBDTTrainer(GBDTParams(n_trees=5, max_depth=4)).fit(ds.X, ds.y)
    flat = model.flatten()
    for i in range(min(10, ds.X_test.n_rows)):
        cols, vals = ds.X_test.row(i)
        row = np.full(ds.X_test.n_cols, np.nan)
        row[cols] = vals
        expected = model.base_score + sum(t.predict_row(cols, vals) for t in model.trees)
        assert flat.predict_one(row) == pytest.approx(expected, abs=TOL)
        assert flat.predict_row(cols, vals) == pytest.approx(expected, abs=TOL)


@pytest.mark.parametrize("missing_rate", [0.0, 0.4])
def test_arena_scratch_predictions_bit_identical(missing_rate):
    """The arena-backed block router must equal the allocating one bit for
    bit -- it reorders no float operation, it only reuses scratch."""
    from repro.core.workspace import WorkspaceArena

    rng = np.random.default_rng(123)
    model = random_model(rng, n_trees=9, n_features=7, max_depth=6)
    flat = FlatEnsemble.from_model(model, n_features=7)
    dense, _, _ = random_inputs(rng, n=200, d=7, missing_rate=missing_rate)
    block = np.ascontiguousarray(dense)
    legacy = flat._route_block(block)
    ws = WorkspaceArena(enabled=True)
    arena_first = flat._route_block(block, ws)
    arena_reused = flat._route_block(block, ws)  # warm buffers, same answer
    assert np.array_equal(legacy, arena_first)
    assert np.array_equal(legacy, arena_reused)
    assert ws.n_reuses > 0


def test_arena_env_toggle_predict_identical(monkeypatch):
    rng = np.random.default_rng(7)
    model = random_model(rng, n_trees=4, n_features=5, max_depth=4)
    flat = FlatEnsemble.from_model(model, n_features=5)
    dense, _, _ = random_inputs(rng, n=50, d=5, missing_rate=0.3)
    monkeypatch.setenv("REPRO_ARENA", "0")
    off = flat.predict(dense)
    monkeypatch.setenv("REPRO_ARENA", "1")
    on = flat.predict(dense)
    assert np.array_equal(off, on)
