"""Tests for Customized SetKey and the histogram-partition planning."""

import numpy as np
import pytest

from repro.core.partition import COUNTER_BYTES, partition_segments, plan_partition
from repro.core.setkey import plan_segment_grid
from repro.gpusim import GpuDevice, TITAN_X_PASCAL


class TestSetKey:
    def test_small_segment_count_one_per_block(self):
        plan = plan_segment_grid(TITAN_X_PASCAL, 100)
        assert plan.segments_per_block == 1
        assert plan.blocks == 100

    def test_paper_formula_caps_blocks(self):
        """1 + #segments/(#SM * C): blocks stay near #SM * C = 28,000."""
        n_seg = 40_000_000
        plan = plan_segment_grid(TITAN_X_PASCAL, n_seg, c=1000)
        assert plan.segments_per_block == 1 + n_seg // (28 * 1000)
        assert plan.blocks <= 28 * 1000 + 1

    def test_disabled_is_one_block_per_segment(self):
        plan = plan_segment_grid(TITAN_X_PASCAL, 5_000_000, enabled=False)
        assert plan.blocks == 5_000_000
        assert not plan.custom

    def test_blocks_cover_all_segments(self):
        for n in (1, 27_999, 28_001, 123_456_789):
            plan = plan_segment_grid(TITAN_X_PASCAL, n)
            assert plan.blocks * plan.segments_per_block >= n

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_segment_grid(TITAN_X_PASCAL, 0)
        with pytest.raises(ValueError):
            plan_segment_grid(TITAN_X_PASCAL, 10, c=0)


class TestPartitionPlan:
    BUDGET = 2**20  # 1 MiB counter budget for readable numbers

    def test_custom_defaults_to_fixed_workload_when_memory_is_fine(self):
        plan = plan_partition(1000, 2, max_counter_mem_bytes=self.BUDGET)
        fixed = plan_partition(
            1000, 2, max_counter_mem_bytes=self.BUDGET, use_custom_workload=False
        )
        assert plan.thread_workload == fixed.thread_workload == 16
        assert plan.passes == fixed.passes == 1

    def test_custom_grows_workload_to_respect_budget(self):
        """The paper's formula: more work per thread when #values x #nodes
        is large, so the counters never exceed the budget."""
        plan = plan_partition(10**8, 32, max_counter_mem_bytes=self.BUDGET)
        assert plan.custom
        assert plan.counter_bytes <= 2 * self.BUDGET  # within ceil rounding
        assert plan.passes == 1

    def test_naive_blows_budget_and_needs_passes(self):
        plan = plan_partition(
            10**8, 32, max_counter_mem_bytes=self.BUDGET, use_custom_workload=False
        )
        assert plan.counter_bytes > self.BUDGET
        assert plan.passes > 1

    def test_thread_count_covers_values(self):
        plan = plan_partition(1001, 4, max_counter_mem_bytes=self.BUDGET)
        assert plan.n_threads * plan.thread_workload >= 1001

    def test_counter_bytes_formula(self):
        plan = plan_partition(
            160, 3, max_counter_mem_bytes=self.BUDGET, use_custom_workload=False,
            fixed_thread_workload=16,
        )
        assert plan.n_threads == 10
        assert plan.counter_bytes == 10 * 6 * COUNTER_BYTES

    def test_empty_input(self):
        plan = plan_partition(0, 1, max_counter_mem_bytes=self.BUDGET)
        assert plan.passes == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            plan_partition(-1, 1, max_counter_mem_bytes=self.BUDGET)


class TestPartitionSegments:
    def _plan(self, n):
        return plan_partition(n, 1, max_counter_mem_bytes=2**30)

    def test_remap_to_node_major_layout(self):
        """Two segments (node0 x attr0, attr1) split into a node-major
        4-segment layout: children of attr j land at [child*2 + j]."""
        d = GpuDevice(TITAN_X_PASCAL)
        offsets = np.array([0, 3, 5])
        side = np.array([0, 1, 0, 1, 0], dtype=np.int8)
        # left child of seg j -> new seg j; right child -> new seg 2 + j
        left_seg = np.array([0, 1])
        right_seg = np.array([2, 3])
        dest, new_off = partition_segments(
            d, offsets, side, left_seg, right_seg, 4, self._plan(5)
        )
        assert list(new_off) == [0, 2, 3, 4, 5]
        out = np.empty(5, dtype=int)
        out[dest] = np.arange(5)
        # new seg 0 = left of old seg 0 (elements 0, 2 in order)
        assert list(out[0:2]) == [0, 2]
        assert list(out[2:3]) == [4]  # left of old seg 1
        assert list(out[3:4]) == [1]  # right of old seg 0
        assert list(out[4:5]) == [3]  # right of old seg 1

    def test_dropped_side_maps(self):
        d = GpuDevice(TITAN_X_PASCAL)
        offsets = np.array([0, 4])
        side = np.array([0, 1, 0, 1], dtype=np.int8)
        dest, new_off = partition_segments(
            d, offsets, side, np.array([0]), np.array([-1]), 1, self._plan(4)
        )
        assert list(new_off) == [0, 2]
        assert dest[1] == -1 and dest[3] == -1

    def test_dropped_elements(self):
        d = GpuDevice(TITAN_X_PASCAL)
        offsets = np.array([0, 3])
        side = np.array([0, -1, 1], dtype=np.int8)
        dest, new_off = partition_segments(
            d, offsets, side, np.array([0]), np.array([1]), 2, self._plan(3)
        )
        assert dest[1] == -1
        assert list(new_off) == [0, 1, 2]

    def test_passes_multiply_recorded_work(self):
        d1 = GpuDevice(TITAN_X_PASCAL)
        d8 = GpuDevice(TITAN_X_PASCAL)
        offsets = np.array([0, 100])
        side = np.zeros(100, dtype=np.int8)
        one = plan_partition(100, 1, max_counter_mem_bytes=2**30)
        import dataclasses

        many = dataclasses.replace(one, passes=8)
        partition_segments(d1, offsets, side, np.array([0]), np.array([1]), 2, one)
        partition_segments(d8, offsets, side, np.array([0]), np.array([1]), 2, many)
        k1 = [k for k in d1.ledger.kernels if k.name == "histogram_partition"][0]
        k8 = [k for k in d8.ledger.kernels if k.name == "histogram_partition"][0]
        assert k8.work.elements == 8 * k1.work.elements
        assert k8.launches == 8

    def test_bad_segment_maps(self):
        d = GpuDevice(TITAN_X_PASCAL)
        with pytest.raises(ValueError):
            partition_segments(
                d, np.array([0, 1]), np.array([0], dtype=np.int8),
                np.array([5]), np.array([0]), 2, self._plan(1),
            )
