"""Tests for feature importance, the extra built-in losses, and the
eval-set / early-stopping facade features."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, GradientBoostedTrees
from repro.core.importance import IMPORTANCE_KINDS, feature_importance
from repro.data import CSRMatrix
from repro.losses import HuberLoss, PoissonLoss, get_loss


class TestFeatureImportance:
    @pytest.fixture
    def model(self):
        """Attr 1 perfectly explains y; attr 0 is noise."""
        rng = np.random.default_rng(0)
        n = 120
        signal = rng.uniform(0, 4, size=n)
        rows = [
            [(0, float(rng.uniform(0, 4))), (1, float(signal[i]))] for i in range(n)
        ]
        X = CSRMatrix.from_rows(rows, n_cols=2)
        y = signal * 2.0
        return GPUGBDTTrainer(GBDTParams(n_trees=4, max_depth=3)).fit(X, y)

    def test_signal_attribute_dominates_gain(self, model):
        imp = feature_importance(model, n_attrs=2, kind="gain")
        assert imp[1] > imp[0]
        assert imp.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("kind", IMPORTANCE_KINDS)
    def test_all_kinds_normalized(self, model, kind):
        imp = feature_importance(model, n_attrs=2, kind=kind)
        assert imp.shape == (2,)
        assert imp.sum() == pytest.approx(1.0)

    def test_unnormalized_split_counts_are_integers(self, model):
        imp = feature_importance(model, n_attrs=2, kind="split", normalize=False)
        assert np.allclose(imp, np.round(imp))
        assert imp.sum() == sum(
            1 for t in model.trees for a in t.attr if a >= 0
        )

    def test_inferred_n_attrs(self, model):
        imp = feature_importance(model)
        assert imp.size >= 1

    def test_bad_kind(self, model):
        with pytest.raises(ValueError):
            feature_importance(model, kind="shap")

    def test_n_attrs_too_small(self, model):
        with pytest.raises(ValueError):
            feature_importance(model, n_attrs=1)

    def test_stump_only_model(self):
        from repro.core.booster_model import GBDTModel
        from repro.core.tree import DecisionTree

        t = DecisionTree()
        t.add_root()
        t.set_leaf(0, 1.0)
        m = GBDTModel(trees=[t], params=GBDTParams())
        assert feature_importance(m, n_attrs=3).tolist() == [0.0, 0.0, 0.0]


class TestExtraLosses:
    def test_huber_registry(self):
        assert isinstance(get_loss("huber"), HuberLoss)
        assert isinstance(get_loss("poisson"), PoissonLoss)
        assert isinstance(get_loss("count:poisson"), PoissonLoss)

    def test_huber_gradient_regions(self):
        loss = HuberLoss(delta=1.0)
        g, h = loss.gradients(np.array([0.0, 0.0]), np.array([0.5, 5.0]))
        assert g[0] == pytest.approx(1.0)  # quadratic region: 2r
        assert g[1] == pytest.approx(2.0)  # linear region: 2*delta
        assert h[0] == 2.0 and h[1] == loss.tail_hessian

    def test_huber_value_continuous_at_delta(self):
        loss = HuberLoss(delta=1.5)
        below = loss.value(np.array([0.0]), np.array([1.5 - 1e-9]))
        above = loss.value(np.array([0.0]), np.array([1.5 + 1e-9]))
        assert below == pytest.approx(above, rel=1e-6)

    def test_huber_validation(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)

    def test_poisson_gradients_match_numeric(self):
        loss = PoissonLoss()
        rng = np.random.default_rng(1)
        y = rng.integers(0, 5, size=30).astype(float)
        m = rng.normal(scale=0.5, size=30)
        g, h = loss.gradients(y, m)
        eps = 1e-6
        num = ((np.exp(m + eps) - y * (m + eps)) - (np.exp(m - eps) - y * (m - eps))) / (2 * eps)
        assert np.allclose(g, num, atol=1e-4)
        assert np.all(h > 0)

    def test_poisson_rejects_negative_targets(self):
        with pytest.raises(ValueError, match="non-negative"):
            PoissonLoss().gradients(np.array([-1.0]), np.array([0.0]))

    def test_poisson_transform_is_exp(self):
        assert PoissonLoss().transform(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_poisson_training_learns_counts(self, susy_small):
        ds = susy_small
        counts = np.round(np.abs(ds.y * 3 + 1)).astype(float)
        est = GradientBoostedTrees(
            GBDTParams(n_trees=10, max_depth=3, loss="poisson")
        ).fit(ds.X, counts)
        mu = est.predict(ds.X, transform=True)
        assert np.all(mu > 0)
        assert abs(mu.mean() - counts.mean()) < counts.mean()

    def test_huber_training_runs(self, susy_small):
        ds = susy_small
        est = GradientBoostedTrees(
            GBDTParams(n_trees=5, max_depth=3, loss=HuberLoss(delta=2.0))
        ).fit(ds.X, ds.y)
        assert np.all(np.isfinite(est.predict(ds.X_test)))


class TestEvalSetAndEarlyStopping:
    def test_eval_history_recorded(self, susy_small):
        ds = susy_small
        est = GradientBoostedTrees(GBDTParams(n_trees=6, max_depth=3)).fit(
            ds.X, ds.y, eval_set=(ds.X_test, ds.y_test)
        )
        assert est.eval_history_.shape == (6,)

    def test_early_stopping_truncates(self, susy_small):
        ds = susy_small
        est = GradientBoostedTrees(GBDTParams(n_trees=30, max_depth=5, learning_rate=1.0)).fit(
            ds.X, ds.y,
            eval_set=(ds.X_test, ds.y_test),
            early_stopping_rounds=3,
        )
        assert est.best_iteration_ is not None
        assert est.model_.n_trees == est.best_iteration_ <= 30
        # the kept prefix ends at the observed validation minimum
        hist = est.eval_history_[: est.best_iteration_]
        assert hist[-1] == hist.min()

    def test_early_stopping_requires_eval_set(self, susy_small):
        ds = susy_small
        with pytest.raises(ValueError, match="requires an eval_set"):
            GradientBoostedTrees(GBDTParams(n_trees=3)).fit(
                ds.X, ds.y, early_stopping_rounds=2
            )

    def test_invalid_rounds(self, susy_small):
        ds = susy_small
        with pytest.raises(ValueError, match=">= 1"):
            GradientBoostedTrees(GBDTParams(n_trees=3)).fit(
                ds.X, ds.y, eval_set=(ds.X_test, ds.y_test), early_stopping_rounds=0
            )

    def test_custom_eval_metric(self, susy_small):
        from repro.metrics import error_rate

        ds = susy_small
        est = GradientBoostedTrees(GBDTParams(n_trees=4, max_depth=3)).fit(
            ds.X, ds.y, eval_set=(ds.X_test, ds.y_test), eval_metric=error_rate
        )
        assert np.all((est.eval_history_ >= 0) & (est.eval_history_ <= 1))
