"""Unit tests for the micro-batcher, prediction cache, registry and stats."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, GpuDevice, TITAN_X_PASCAL
from repro.serve import (
    BatchPolicy,
    FlatEnsemble,
    MicroBatcher,
    ModelRegistry,
    PendingPrediction,
    QueueFull,
    ServingStats,
)


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


@pytest.fixture
def trained(susy_small):
    ds = susy_small
    model = GPUGBDTTrainer(GBDTParams(n_trees=6, max_depth=4)).fit(ds.X, ds.y)
    return ds, model


@pytest.fixture
def serving(trained):
    ds, model = trained
    rng = np.random.default_rng(1)
    rows = rng.normal(size=(64, ds.X.n_cols))
    return model.flatten(), rows


# ------------------------------------------------------------ flush triggers
class TestFlushing:
    def test_max_batch_flush_on_poll(self, serving):
        flat, rows = serving
        clock = FakeClock()
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=8, max_wait=1.0), clock=clock)
        handles = [mb.submit(r) for r in rows[:10]]
        assert mb.queue_depth == 10
        assert mb.poll() == 8  # one full batch; 2 young requests remain queued
        assert all(h.done for h in handles[:8])
        assert not any(h.done for h in handles[8:])
        expected = flat.predict(rows[:10])
        for h, e in zip(handles[:8], expected):
            assert h.result() == pytest.approx(e, abs=1e-12)

    def test_max_wait_flushes_partial_batch(self, serving):
        flat, rows = serving
        clock = FakeClock()
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=32, max_wait=0.005), clock=clock)
        handles = [mb.submit(r) for r in rows[:3]]
        assert mb.poll() == 0  # under max_batch and under max_wait
        clock.advance(0.004)
        assert mb.poll() == 0  # still too young
        clock.advance(0.002)  # oldest now waited 6 ms > 5 ms
        assert mb.poll() == 3
        assert all(h.done for h in handles)
        # recorded latency is the queue wait under the simulated clock
        assert mb.stats.p99 == pytest.approx(0.006, abs=1e-9)

    def test_unflushed_result_raises(self, serving):
        flat, rows = serving
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=8), clock=FakeClock())
        h = mb.submit(rows[0])
        with pytest.raises(RuntimeError, match="not flushed"):
            h.result()

    def test_drain_flushes_everything(self, serving):
        flat, rows = serving
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=8, max_wait=10.0), clock=FakeClock())
        handles = [mb.submit(r) for r in rows[:20]]
        assert mb.drain() == 20
        assert mb.queue_depth == 0
        assert all(h.done for h in handles)
        assert mb.stats.n_batches == 3  # 8 + 8 + 4
        assert mb.stats.mean_batch_size == pytest.approx(20 / 3)


# ------------------------------------------------------------- backpressure
class TestOverload:
    def test_reject_policy_raises_and_counts(self, serving):
        flat, rows = serving
        policy = BatchPolicy(max_batch=64, max_wait=1.0, max_queue=4, overload="reject")
        mb = MicroBatcher(flat, policy=policy, clock=FakeClock())
        for r in rows[:4]:
            mb.submit(r)
        with pytest.raises(QueueFull):
            mb.submit(rows[4])
        with pytest.raises(QueueFull):
            mb.submit(rows[5])
        assert mb.stats.rejected == 2
        assert mb.queue_depth == 4  # queued requests unharmed
        mb.drain()
        assert mb.stats.n_requests == 4

    def test_degrade_policy_serves_overflow_per_row(self, serving):
        flat, rows = serving
        policy = BatchPolicy(max_batch=64, max_wait=1.0, max_queue=4, overload="degrade")
        mb = MicroBatcher(flat, policy=policy, clock=FakeClock())
        queued = [mb.submit(r) for r in rows[:4]]
        shed = mb.submit(rows[4])
        assert shed.done and shed.degraded
        assert shed.result() == pytest.approx(flat.predict(rows[4:5])[0], abs=1e-9)
        assert mb.stats.shed == 1 and mb.stats.rejected == 0
        assert not queued[0].done  # queue untouched by the degraded request
        mb.drain()
        expected = flat.predict(rows[:4])
        for h, e in zip(queued, expected):
            assert h.result() == pytest.approx(e, abs=1e-12)


# -------------------------------------------------------------------- cache
class TestCache:
    def test_hit_and_miss_accounting(self, serving):
        flat, rows = serving
        policy = BatchPolicy(max_batch=4, max_wait=1.0, cache_size=16)
        mb = MicroBatcher(flat, policy=policy, clock=FakeClock())
        for r in rows[:4]:
            mb.submit(r)
        mb.poll()
        hit = mb.submit(rows[0])
        assert hit.done and hit.cache_hit
        assert hit.result() == pytest.approx(flat.predict(rows[:1])[0], abs=1e-12)
        assert mb.cache.hits == 1
        assert mb.cache.misses == 4
        miss = mb.submit(rows[10])
        assert not miss.done
        assert mb.cache.misses == 5
        assert mb.cache.hit_rate == pytest.approx(1 / 6)

    def test_lru_eviction(self, serving):
        flat, rows = serving
        policy = BatchPolicy(max_batch=4, max_wait=1.0, cache_size=4)
        mb = MicroBatcher(flat, policy=policy, clock=FakeClock())
        for r in rows[:8]:
            mb.submit(r)
        mb.drain()
        assert not mb.submit(rows[0]).done      # evicted (first batch)
        assert mb.submit(rows[7]).cache_hit     # still resident (last batch)

    def test_cache_disabled_by_default(self, serving):
        flat, rows = serving
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=2), clock=FakeClock())
        mb.submit(rows[0])
        mb.submit(rows[0])
        mb.poll()
        assert mb.cache.hits == 0 and mb.cache.misses == 0

    def test_shared_obs_counters_carry_replica_label(self, serving):
        from repro.obs import MetricsRegistry, use_registry

        flat, rows = serving
        with use_registry(MetricsRegistry()) as reg:
            policy = BatchPolicy(max_batch=4, max_wait=1.0, cache_size=2)
            mb = MicroBatcher(flat, policy=policy, clock=FakeClock(),
                              replica="r7")
            for r in rows[:4]:
                mb.submit(r)
            mb.drain()
            mb.submit(rows[3])  # hit
            samples = {
                (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
                for s in reg.collect()
            }
        assert samples[("serve_cache_hits_total", (("replica", "r7"),))] == 1
        assert samples[("serve_cache_misses_total", (("replica", "r7"),))] == 4
        assert samples[("serve_cache_evictions_total", (("replica", "r7"),))] == 2


# ----------------------------------------------------------- registry + swap
class TestRegistryServing:
    def _two_models(self, susy_small):
        ds = susy_small
        a = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3)).fit(ds.X, ds.y)
        b = GPUGBDTTrainer(GBDTParams(n_trees=9, max_depth=4)).fit(ds.X, ds.y)
        return ds, a, b

    def test_hot_swap_mid_stream_is_batch_consistent(self, susy_small):
        ds, model_a, model_b = self._two_models(susy_small)
        rng = np.random.default_rng(3)
        rows = rng.normal(size=(8, ds.X.n_cols))
        registry = ModelRegistry()
        va = registry.publish(model_a)
        mb = MicroBatcher(registry, policy=BatchPolicy(max_batch=64, max_wait=1.0),
                          clock=FakeClock())
        first = [mb.submit(r) for r in rows[:4]]
        mb.drain()
        vb = registry.publish(model_b)  # hot swap between batches
        second = [mb.submit(r) for r in rows[4:]]
        mb.drain()
        assert {h.version for h in first} == {va}
        assert {h.version for h in second} == {vb}
        exp_a = model_a.flatten().predict(rows[:4])
        exp_b = model_b.flatten().predict(rows[4:])
        for h, e in zip(first, exp_a):
            assert h.result() == pytest.approx(e, abs=1e-9)
        for h, e in zip(second, exp_b):
            assert h.result() == pytest.approx(e, abs=1e-9)

    def test_swap_invalidates_prediction_cache(self, susy_small):
        ds, model_a, model_b = self._two_models(susy_small)
        row = np.zeros(ds.X.n_cols)
        registry = ModelRegistry()
        registry.publish(model_a)
        mb = MicroBatcher(registry, policy=BatchPolicy(max_batch=1, cache_size=8),
                          clock=FakeClock())
        mb.submit(row)
        mb.drain()
        assert mb.submit(row).cache_hit
        registry.publish(model_b)
        after = mb.submit(row)
        assert not after.cache_hit  # stale cache dropped with the old version
        mb.drain()
        assert after.result() == pytest.approx(
            model_b.flatten().predict(row[None, :])[0], abs=1e-9
        )

    def test_rollback_restores_previous_version(self, susy_small):
        ds, model_a, model_b = self._two_models(susy_small)
        registry = ModelRegistry()
        va = registry.publish(model_a)
        vb = registry.publish(model_b)
        assert registry.active().version == vb
        assert registry.rollback() == va
        assert registry.active().version == va
        assert registry.versions() == [va, vb]

    def test_registry_errors(self, susy_small):
        ds, model_a, _ = self._two_models(susy_small)
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.active()
        registry.publish(model_a)
        with pytest.raises(KeyError):
            registry.activate("default", "nope")
        with pytest.raises(KeyError):
            registry.rollback()  # only one version active so far

    def test_round_trip_preserves_predictions(self, susy_small):
        ds, model_a, _ = self._two_models(susy_small)
        registry = ModelRegistry()
        registry.publish(model_a)
        served = registry.active().flat.predict(ds.X_test)
        assert np.allclose(served, model_a.predict(ds.X_test), atol=1e-9)
        restored = registry.active().restore()
        assert np.allclose(restored.predict(ds.X_test), served, atol=1e-9)


# ------------------------------------------------------------ device charge
class TestDeviceCharging:
    def test_flush_charges_prediction_kernels(self, serving):
        flat, rows = serving
        device = GpuDevice(TITAN_X_PASCAL)
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=16, max_wait=1.0),
                          device=device, clock=FakeClock())
        for r in rows[:16]:
            mb.submit(r)
        mb.poll()
        k = next(k for k in device.ledger.kernels if k.name == "predict_instance_x_tree")
        assert k.work.elements == 16 * flat.n_trees
        assert k.phase == "predict"
        assert device.elapsed_seconds() > 0.0

    def test_per_batch_charges_accumulate(self, serving):
        flat, rows = serving
        device = GpuDevice(TITAN_X_PASCAL)
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=8, max_wait=1.0),
                          device=device, clock=FakeClock())
        for r in rows[:24]:
            mb.submit(r)
        mb.drain()
        launches = [k for k in device.ledger.kernels if k.name == "predict_instance_x_tree"]
        assert len(launches) == 3


# -------------------------------------------------------------------- stats
class TestStats:
    def test_percentiles_match_numpy(self):
        stats = ServingStats()
        lats = [0.001 * i for i in range(1, 101)]
        for lat in lats:
            stats.record_request(lat)
        assert stats.p50 == pytest.approx(np.percentile(lats, 50))
        assert stats.p95 == pytest.approx(np.percentile(lats, 95))
        assert stats.p99 == pytest.approx(np.percentile(lats, 99))

    def test_empty_stats_are_zero(self):
        stats = ServingStats()
        assert stats.p50 == 0.0 and stats.throughput() == 0.0

    def test_cache_plumbing_removed_from_stats(self):
        # satellite: cache accounting moved to FeatureCache + obs labels;
        # the old single-process plumbing must stay dead
        stats = ServingStats()
        assert not hasattr(stats, "record_lookup")
        assert not hasattr(stats, "cache_hits")
        assert not hasattr(stats, "cache_hit_rate")
        assert "cache_hits" not in stats.summary()

    def test_throughput_window(self):
        stats = ServingStats()
        stats.note_time(10.0)
        for _ in range(50):
            stats.record_request(0.0)
        stats.note_time(15.0)
        assert stats.throughput() == pytest.approx(10.0)
        assert stats.throughput(duration=25.0) == pytest.approx(2.0)

    def test_summary_is_json_safe(self, serving):
        import json

        flat, rows = serving
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=4, cache_size=4),
                          clock=FakeClock())
        for r in rows[:6]:
            mb.submit(r)
        mb.drain()
        summary = mb.stats.summary(duration=1.0)
        parsed = json.loads(json.dumps(summary))
        assert parsed["n_requests"] == 6
        assert parsed["n_batches"] == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(overload="panic")
        with pytest.raises(ValueError):
            BatchPolicy(max_wait=-1.0)

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError):
            MicroBatcher(object())

    def test_pending_prediction_repr_free_slots(self):
        p = PendingPrediction()
        assert not p.done and p.value is None

    def test_double_resolve_raises(self):
        p = PendingPrediction()
        p._resolve(1.0, None, 0.0)
        with pytest.raises(RuntimeError, match="twice"):
            p._resolve(2.0, None, 0.0)


# --------------------------------------------------- transport-agnostic core
class TestBatchCore:
    def test_late_arrival_does_not_extend_deadline(self, serving):
        """Regression (first-request-anchored deadline): a request arriving
        just before the max-wait expiry must not push the flush out -- the
        window is anchored to the *oldest* queued request, so the head is
        never starved by a steady trickle of arrivals."""
        flat, rows = serving
        clock = FakeClock()
        mb = MicroBatcher(
            flat, policy=BatchPolicy(max_batch=32, max_wait=0.005), clock=clock
        )
        first = mb.submit(rows[0])  # head enqueued at t=0; deadline t=5ms
        clock.advance(0.0049)
        late = mb.submit(rows[1])  # 0.1ms before the deadline
        assert mb.poll() == 0  # not due yet
        clock.advance(0.0002)  # t=5.1ms: head has waited 5.1ms >= 5ms
        assert mb.poll() == 2, "late arrival extended the head's wait window"
        assert first.done and late.done
        # and the core reports the anchor, not a re-armed deadline
        assert mb.queue.next_deadline() is None

    def test_next_deadline_anchored_to_head(self):
        from repro.serve import BatchQueue

        q = BatchQueue(max_batch=8, max_wait=0.01, max_queue=16)
        assert q.next_deadline() is None and q.ready_at() is None
        q.push("a", 1.0)
        q.push("b", 1.005)
        assert q.next_deadline() == pytest.approx(1.01)  # head + max_wait
        assert q.ready_at() == pytest.approx(1.01)
        assert not q.ready(1.009) and q.ready(1.01)

    def test_ready_at_full_batch_is_fill_instant(self):
        from repro.serve import BatchQueue

        q = BatchQueue(max_batch=3, max_wait=10.0, max_queue=16)
        for i, t in enumerate((1.0, 2.0, 3.5)):
            q.push(i, t)
        q.push(3, 4.0)
        # due the moment the 3rd item arrived, not when the 4th did
        assert q.ready_at() == pytest.approx(3.5)
        batch = q.take_ready(3.5)
        assert [item for item, _ in batch] == [0, 1, 2]
        assert len(q) == 1

    def test_push_refuses_beyond_max_queue(self):
        from repro.serve import BatchQueue

        q = BatchQueue(max_batch=8, max_wait=1.0, max_queue=2)
        assert q.push("a", 0.0) and q.push("b", 0.0)
        assert not q.push("c", 0.0)
        assert len(q) == 2

    def test_take_ready_complete_split_controls_latency(self, serving):
        """The cluster transport completes batches at take + service time;
        the recorded latency must include both queue wait and service."""
        flat, rows = serving
        mb = MicroBatcher(
            flat, policy=BatchPolicy(max_batch=2, max_wait=1.0), clock=FakeClock()
        )
        h1 = mb.submit(rows[0], now=0.0)
        h2 = mb.submit(rows[1], now=0.001)
        batch = mb.take_ready(0.001)  # full batch due at second arrival
        assert batch is not None and len(batch) == 2
        assert mb.take_ready(0.001) is None
        mb.complete(batch, now=0.004)  # transport adds 3ms service
        assert h1.t_done == h2.t_done == 0.004
        # recorded latencies span queue wait + service: 4ms and 3ms
        assert mb.stats.percentile(100) == pytest.approx(0.004, abs=1e-9)
        assert mb.stats.percentile(0) == pytest.approx(0.003, abs=1e-9)
        expected = flat.predict(rows[:2])
        assert h1.result() == pytest.approx(expected[0], abs=1e-12)
        assert h2.result() == pytest.approx(expected[1], abs=1e-12)
