"""Unit tests for the micro-batcher, prediction cache, registry and stats."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, GpuDevice, TITAN_X_PASCAL
from repro.serve import (
    BatchPolicy,
    FlatEnsemble,
    MicroBatcher,
    ModelRegistry,
    PendingPrediction,
    QueueFull,
    ServingStats,
)


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


@pytest.fixture
def trained(susy_small):
    ds = susy_small
    model = GPUGBDTTrainer(GBDTParams(n_trees=6, max_depth=4)).fit(ds.X, ds.y)
    return ds, model


@pytest.fixture
def serving(trained):
    ds, model = trained
    rng = np.random.default_rng(1)
    rows = rng.normal(size=(64, ds.X.n_cols))
    return model.flatten(), rows


# ------------------------------------------------------------ flush triggers
class TestFlushing:
    def test_max_batch_flush_on_poll(self, serving):
        flat, rows = serving
        clock = FakeClock()
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=8, max_wait=1.0), clock=clock)
        handles = [mb.submit(r) for r in rows[:10]]
        assert mb.queue_depth == 10
        assert mb.poll() == 8  # one full batch; 2 young requests remain queued
        assert all(h.done for h in handles[:8])
        assert not any(h.done for h in handles[8:])
        expected = flat.predict(rows[:10])
        for h, e in zip(handles[:8], expected):
            assert h.result() == pytest.approx(e, abs=1e-12)

    def test_max_wait_flushes_partial_batch(self, serving):
        flat, rows = serving
        clock = FakeClock()
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=32, max_wait=0.005), clock=clock)
        handles = [mb.submit(r) for r in rows[:3]]
        assert mb.poll() == 0  # under max_batch and under max_wait
        clock.advance(0.004)
        assert mb.poll() == 0  # still too young
        clock.advance(0.002)  # oldest now waited 6 ms > 5 ms
        assert mb.poll() == 3
        assert all(h.done for h in handles)
        # recorded latency is the queue wait under the simulated clock
        assert mb.stats.p99 == pytest.approx(0.006, abs=1e-9)

    def test_unflushed_result_raises(self, serving):
        flat, rows = serving
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=8), clock=FakeClock())
        h = mb.submit(rows[0])
        with pytest.raises(RuntimeError, match="not flushed"):
            h.result()

    def test_drain_flushes_everything(self, serving):
        flat, rows = serving
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=8, max_wait=10.0), clock=FakeClock())
        handles = [mb.submit(r) for r in rows[:20]]
        assert mb.drain() == 20
        assert mb.queue_depth == 0
        assert all(h.done for h in handles)
        assert mb.stats.n_batches == 3  # 8 + 8 + 4
        assert mb.stats.mean_batch_size == pytest.approx(20 / 3)


# ------------------------------------------------------------- backpressure
class TestOverload:
    def test_reject_policy_raises_and_counts(self, serving):
        flat, rows = serving
        policy = BatchPolicy(max_batch=64, max_wait=1.0, max_queue=4, overload="reject")
        mb = MicroBatcher(flat, policy=policy, clock=FakeClock())
        for r in rows[:4]:
            mb.submit(r)
        with pytest.raises(QueueFull):
            mb.submit(rows[4])
        with pytest.raises(QueueFull):
            mb.submit(rows[5])
        assert mb.stats.rejected == 2
        assert mb.queue_depth == 4  # queued requests unharmed
        mb.drain()
        assert mb.stats.n_requests == 4

    def test_degrade_policy_serves_overflow_per_row(self, serving):
        flat, rows = serving
        policy = BatchPolicy(max_batch=64, max_wait=1.0, max_queue=4, overload="degrade")
        mb = MicroBatcher(flat, policy=policy, clock=FakeClock())
        queued = [mb.submit(r) for r in rows[:4]]
        shed = mb.submit(rows[4])
        assert shed.done and shed.degraded
        assert shed.result() == pytest.approx(flat.predict(rows[4:5])[0], abs=1e-9)
        assert mb.stats.shed == 1 and mb.stats.rejected == 0
        assert not queued[0].done  # queue untouched by the degraded request
        mb.drain()
        expected = flat.predict(rows[:4])
        for h, e in zip(queued, expected):
            assert h.result() == pytest.approx(e, abs=1e-12)


# -------------------------------------------------------------------- cache
class TestCache:
    def test_hit_and_miss_accounting(self, serving):
        flat, rows = serving
        policy = BatchPolicy(max_batch=4, max_wait=1.0, cache_size=16)
        mb = MicroBatcher(flat, policy=policy, clock=FakeClock())
        for r in rows[:4]:
            mb.submit(r)
        mb.poll()
        hit = mb.submit(rows[0])
        assert hit.done and hit.cache_hit
        assert hit.result() == pytest.approx(flat.predict(rows[:1])[0], abs=1e-12)
        assert mb.stats.cache_hits == 1
        assert mb.stats.cache_misses == 4
        miss = mb.submit(rows[10])
        assert not miss.done
        assert mb.stats.cache_misses == 5

    def test_lru_eviction(self, serving):
        flat, rows = serving
        policy = BatchPolicy(max_batch=4, max_wait=1.0, cache_size=4)
        mb = MicroBatcher(flat, policy=policy, clock=FakeClock())
        for r in rows[:8]:
            mb.submit(r)
        mb.drain()
        assert not mb.submit(rows[0]).done      # evicted (first batch)
        assert mb.submit(rows[7]).cache_hit     # still resident (last batch)

    def test_cache_disabled_by_default(self, serving):
        flat, rows = serving
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=2), clock=FakeClock())
        mb.submit(rows[0])
        mb.submit(rows[0])
        mb.poll()
        assert mb.stats.cache_hits == 0


# ----------------------------------------------------------- registry + swap
class TestRegistryServing:
    def _two_models(self, susy_small):
        ds = susy_small
        a = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3)).fit(ds.X, ds.y)
        b = GPUGBDTTrainer(GBDTParams(n_trees=9, max_depth=4)).fit(ds.X, ds.y)
        return ds, a, b

    def test_hot_swap_mid_stream_is_batch_consistent(self, susy_small):
        ds, model_a, model_b = self._two_models(susy_small)
        rng = np.random.default_rng(3)
        rows = rng.normal(size=(8, ds.X.n_cols))
        registry = ModelRegistry()
        va = registry.publish(model_a)
        mb = MicroBatcher(registry, policy=BatchPolicy(max_batch=64, max_wait=1.0),
                          clock=FakeClock())
        first = [mb.submit(r) for r in rows[:4]]
        mb.drain()
        vb = registry.publish(model_b)  # hot swap between batches
        second = [mb.submit(r) for r in rows[4:]]
        mb.drain()
        assert {h.version for h in first} == {va}
        assert {h.version for h in second} == {vb}
        exp_a = model_a.flatten().predict(rows[:4])
        exp_b = model_b.flatten().predict(rows[4:])
        for h, e in zip(first, exp_a):
            assert h.result() == pytest.approx(e, abs=1e-9)
        for h, e in zip(second, exp_b):
            assert h.result() == pytest.approx(e, abs=1e-9)

    def test_swap_invalidates_prediction_cache(self, susy_small):
        ds, model_a, model_b = self._two_models(susy_small)
        row = np.zeros(ds.X.n_cols)
        registry = ModelRegistry()
        registry.publish(model_a)
        mb = MicroBatcher(registry, policy=BatchPolicy(max_batch=1, cache_size=8),
                          clock=FakeClock())
        mb.submit(row)
        mb.drain()
        assert mb.submit(row).cache_hit
        registry.publish(model_b)
        after = mb.submit(row)
        assert not after.cache_hit  # stale cache dropped with the old version
        mb.drain()
        assert after.result() == pytest.approx(
            model_b.flatten().predict(row[None, :])[0], abs=1e-9
        )

    def test_rollback_restores_previous_version(self, susy_small):
        ds, model_a, model_b = self._two_models(susy_small)
        registry = ModelRegistry()
        va = registry.publish(model_a)
        vb = registry.publish(model_b)
        assert registry.active().version == vb
        assert registry.rollback() == va
        assert registry.active().version == va
        assert registry.versions() == [va, vb]

    def test_registry_errors(self, susy_small):
        ds, model_a, _ = self._two_models(susy_small)
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.active()
        registry.publish(model_a)
        with pytest.raises(KeyError):
            registry.activate("default", "nope")
        with pytest.raises(KeyError):
            registry.rollback()  # only one version active so far

    def test_round_trip_preserves_predictions(self, susy_small):
        ds, model_a, _ = self._two_models(susy_small)
        registry = ModelRegistry()
        registry.publish(model_a)
        served = registry.active().flat.predict(ds.X_test)
        assert np.allclose(served, model_a.predict(ds.X_test), atol=1e-9)
        restored = registry.active().restore()
        assert np.allclose(restored.predict(ds.X_test), served, atol=1e-9)


# ------------------------------------------------------------ device charge
class TestDeviceCharging:
    def test_flush_charges_prediction_kernels(self, serving):
        flat, rows = serving
        device = GpuDevice(TITAN_X_PASCAL)
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=16, max_wait=1.0),
                          device=device, clock=FakeClock())
        for r in rows[:16]:
            mb.submit(r)
        mb.poll()
        k = next(k for k in device.ledger.kernels if k.name == "predict_instance_x_tree")
        assert k.work.elements == 16 * flat.n_trees
        assert k.phase == "predict"
        assert device.elapsed_seconds() > 0.0

    def test_per_batch_charges_accumulate(self, serving):
        flat, rows = serving
        device = GpuDevice(TITAN_X_PASCAL)
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=8, max_wait=1.0),
                          device=device, clock=FakeClock())
        for r in rows[:24]:
            mb.submit(r)
        mb.drain()
        launches = [k for k in device.ledger.kernels if k.name == "predict_instance_x_tree"]
        assert len(launches) == 3


# -------------------------------------------------------------------- stats
class TestStats:
    def test_percentiles_match_numpy(self):
        stats = ServingStats()
        lats = [0.001 * i for i in range(1, 101)]
        for lat in lats:
            stats.record_request(lat)
        assert stats.p50 == pytest.approx(np.percentile(lats, 50))
        assert stats.p95 == pytest.approx(np.percentile(lats, 95))
        assert stats.p99 == pytest.approx(np.percentile(lats, 99))

    def test_empty_stats_are_zero(self):
        stats = ServingStats()
        assert stats.p50 == 0.0 and stats.throughput() == 0.0
        assert stats.cache_hit_rate == 0.0

    def test_throughput_window(self):
        stats = ServingStats()
        stats.note_time(10.0)
        for _ in range(50):
            stats.record_request(0.0)
        stats.note_time(15.0)
        assert stats.throughput() == pytest.approx(10.0)
        assert stats.throughput(duration=25.0) == pytest.approx(2.0)

    def test_summary_is_json_safe(self, serving):
        import json

        flat, rows = serving
        mb = MicroBatcher(flat, policy=BatchPolicy(max_batch=4, cache_size=4),
                          clock=FakeClock())
        for r in rows[:6]:
            mb.submit(r)
        mb.drain()
        summary = mb.stats.summary(duration=1.0)
        parsed = json.loads(json.dumps(summary))
        assert parsed["n_requests"] == 6
        assert parsed["n_batches"] == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(overload="panic")
        with pytest.raises(ValueError):
            BatchPolicy(max_wait=-1.0)

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError):
            MicroBatcher(object())

    def test_pending_prediction_repr_free_slots(self):
        p = PendingPrediction()
        assert not p.done and p.value is None
