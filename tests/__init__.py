"""Test package (importable so tests can share helpers from conftest)."""
