"""Cross-device test: the P100/K20 validation note of Section IV."""

import pytest

from repro import GBDTParams, TESLA_K20, TESLA_P100, TITAN_X_PASCAL
from repro.bench.experiments import run_device_sweep
from repro.bench.harness import run_gpu_gbdt
from repro.data import make_dataset


class TestDeviceOrdering:
    def test_faster_devices_train_faster(self):
        """K20 < Titan X < P100 in training throughput."""
        ds = make_dataset("susy", run_rows=500)
        p = GBDTParams(n_trees=4, max_depth=5)
        times = {
            spec.name: run_gpu_gbdt(ds, p, spec=spec).seconds
            for spec in (TESLA_K20, TITAN_X_PASCAL, TESLA_P100)
        }
        assert times["Tesla P100"] < times["Titan X (Pascal)"] < times["Tesla K20"]

    def test_k20_memory_is_tighter(self):
        """The 5 GB K20 OOMs on workloads the 12 GB Titan X can hold --
        a Kaggle-scale categorical dataset (17M x 142) needs ~10 GB."""
        import dataclasses

        base = make_dataset("insurance", run_rows=300)
        ds = dataclasses.replace(
            base,
            spec=dataclasses.replace(
                base.spec, n_full=17_000_000, d_full=142, density_full=0.9
            ),
        )
        p = GBDTParams(n_trees=1, max_depth=6)
        titan = run_gpu_gbdt(ds, p, spec=TITAN_X_PASCAL)
        k20 = run_gpu_gbdt(ds, p, spec=TESLA_K20)
        assert titan.ok
        assert not k20.ok

    def test_sweep_experiment(self):
        res = run_device_sweep(quick=True, names=("susy",))
        assert res.xs == ["Tesla K20", "Titan X (Pascal)", "Tesla P100"]
        sus = res.series["susy"]
        assert sus[0] == 1.0
        assert sus[0] < sus[1] < sus[2]
