"""Tests for the dense GPU XGBoost baseline: missing-as-zero semantics,
device OOM at Table-II scale, comparable time on dense data."""

import numpy as np
import pytest

from repro import (
    DeviceOutOfMemory,
    GBDTParams,
    GPUGBDTTrainer,
    GpuDevice,
    TITAN_X_PASCAL,
    models_equal,
)
from repro.cpu.gpu_xgboost import DenseGpuXgboostTrainer, dense_device_bytes, densify
from repro.data import CSRMatrix, make_dataset


class TestDensify:
    def test_all_cells_present(self):
        X = CSRMatrix.from_rows([[(1, 2.0)], []], n_cols=3)
        D = densify(X)
        assert D.nnz == 6
        assert D.get(0, 0) == 0.0  # absent became literal zero
        assert D.get(0, 1) == 2.0
        assert D.get(1, 2) == 0.0

    def test_preserves_shape(self):
        X = CSRMatrix.from_rows([[(0, 1.0)]], n_cols=5)
        assert densify(X).shape == (1, 5)


class TestMemoryFootprint:
    def test_formula(self):
        assert dense_device_bytes(10, 10, 1) == 10 * 10 * 8 + 10 * 8

    def test_interleaving_grows_with_depth(self):
        """'The number of copies equals the number of nodes to split.'"""
        shallow = dense_device_bytes(1000, 10, 2)
        deep = dense_device_bytes(1000, 10, 6)
        assert deep > shallow

    @pytest.mark.parametrize(
        "name,expect_oom",
        [
            ("covtype", False),
            ("e2006", True),
            ("higgs", False),
            ("log1p", True),
            ("news20", True),
            ("real-sim", False),  # 11.3 GiB: barely fits, as in the paper
            ("susy", False),
        ],
    )
    def test_table2_oom_pattern(self, name, expect_oom):
        """xgbst-gpu 'cannot process most of the datasets tested ... because
        of out of memory' -- exactly the large sparse ones."""
        from repro.bench.harness import run_xgb_gpu

        ds = make_dataset(name, run_rows=120, run_cols=40)
        res = run_xgb_gpu(ds, GBDTParams(n_trees=1, max_depth=6))
        assert (res.status == "oom") == expect_oom

    def test_oom_raises_from_trainer(self):
        ds = make_dataset("news20", run_rows=100, run_cols=30)
        cells_full = ds.spec.n_full * ds.spec.d_full
        cells_run = 75 * 30  # after test split
        device = GpuDevice(TITAN_X_PASCAL, work_scale=cells_full / cells_run)
        trainer = DenseGpuXgboostTrainer(GBDTParams(n_trees=1), device)
        with pytest.raises(DeviceOutOfMemory):
            trainer.fit(ds.X, ds.y)


class TestSemantics:
    def test_matches_reference_on_fully_dense_data(self):
        """With no absent cells, zero-filling changes nothing: the dense
        baseline must learn the exact same trees."""
        rng = np.random.default_rng(5)
        dense = rng.uniform(0.5, 2.0, size=(80, 6))
        from repro.core.booster import as_csr

        X = as_csr(dense)
        y = rng.normal(size=80)
        p = GBDTParams(n_trees=3, max_depth=3)
        base = GPUGBDTTrainer(p.replace(use_rle=False)).fit(X, y)
        densed = DenseGpuXgboostTrainer(p).fit(X, y)
        assert models_equal(base, densed)

    def test_differs_on_sparse_data(self, sparse_small):
        """Missing-as-zero changes the learned trees -> the RMSE drift of
        Table II ('probably because of dense representation which considers
        missing values as 0')."""
        ds = sparse_small
        p = GBDTParams(n_trees=3, max_depth=4)
        base = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        densed = DenseGpuXgboostTrainer(p).fit(ds.X, ds.y)
        assert not models_equal(base, densed)

    def test_rle_disabled_in_dense_baseline(self, covtype_small):
        ds = covtype_small
        t = DenseGpuXgboostTrainer(GBDTParams(n_trees=1, max_depth=2))
        t.fit(ds.X, ds.y)
        assert t.report is not None and not t.report.used_rle

    def test_comparable_time_on_dense_susy_like_data(self):
        """Paper: 'the execution time of our algorithm is comparable to
        xgbst-gpu' for susy (a nearly-dense dataset)."""
        from repro.bench.harness import run_gpu_gbdt, run_xgb_gpu

        ds = make_dataset("susy", run_rows=300)
        p = GBDTParams(n_trees=3, max_depth=4)
        ours = run_gpu_gbdt(ds, p)
        theirs = run_xgb_gpu(ds, p)
        assert theirs.ok
        ratio = theirs.seconds / ours.seconds
        assert 0.5 < ratio < 2.0
