"""Tests for repro.gpusim.device specs."""

import pytest

from repro.gpusim.device import (
    GIB,
    TESLA_K20,
    TESLA_P100,
    TITAN_X_PASCAL,
    XEON_E5_2640V4_X2,
    CpuSpec,
    DeviceSpec,
)


class TestDeviceSpec:
    def test_titan_x_matches_paper_hardware(self):
        """Section IV: Titan X Pascal with 12 GB of memory, $1,200."""
        assert TITAN_X_PASCAL.global_mem_bytes == 12 * GIB
        assert TITAN_X_PASCAL.price_usd == 1200.0
        assert TITAN_X_PASCAL.total_cores == 3584  # 28 SMs x 128

    def test_peak_gflops(self):
        s = TITAN_X_PASCAL
        assert s.peak_gflops == pytest.approx(s.total_cores * s.clock_ghz * 2)

    def test_presets_are_distinct(self):
        names = {TITAN_X_PASCAL.name, TESLA_P100.name, TESLA_K20.name}
        assert len(names) == 3

    def test_p100_has_more_bandwidth_than_k20(self):
        """The paper reports near-sublinear scaling across K20/TitanX/P100."""
        assert TESLA_P100.mem_bandwidth_gbs > TITAN_X_PASCAL.mem_bandwidth_gbs > TESLA_K20.mem_bandwidth_gbs

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", sm_count=0, cores_per_sm=1, clock_ghz=1.0,
                global_mem_bytes=1, mem_bandwidth_gbs=1, pcie_bandwidth_gbs=1,
                kernel_launch_us=1, price_usd=1,
            )

    def test_invalid_irregular_efficiency_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", sm_count=1, cores_per_sm=1, clock_ghz=1.0,
                global_mem_bytes=1, mem_bandwidth_gbs=1, pcie_bandwidth_gbs=1,
                kernel_launch_us=1, price_usd=1, irregular_efficiency=0.0,
            )

    def test_describe_mentions_price(self):
        assert "$1200" in TITAN_X_PASCAL.describe()


class TestCpuSpec:
    def test_paper_workstation(self):
        """Section IV: two E5-2640v4 10-core CPUs, $1,878, 40 threads best."""
        assert XEON_E5_2640V4_X2.cores == 20
        assert XEON_E5_2640V4_X2.threads == 40
        assert XEON_E5_2640V4_X2.price_usd == 1878.0

    def test_effective_cores_single_thread(self):
        assert XEON_E5_2640V4_X2.effective_cores(1) == 1.0

    def test_effective_cores_monotonic(self):
        s = XEON_E5_2640V4_X2
        vals = [s.effective_cores(t) for t in (1, 2, 10, 20, 40)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_smt_yield_beyond_physical_cores(self):
        s = XEON_E5_2640V4_X2
        assert s.effective_cores(40) < 40  # SMT is not free parallelism
        assert s.effective_cores(40) > s.effective_cores(20)

    def test_threads_clamped_to_hardware(self):
        s = XEON_E5_2640V4_X2
        assert s.effective_cores(80) == s.effective_cores(40)
        assert s.effective_bandwidth(80) == s.effective_bandwidth(40)

    def test_effective_bandwidth_saturates(self):
        s = XEON_E5_2640V4_X2
        assert s.effective_bandwidth(1) == pytest.approx(s.per_thread_bandwidth_gbs)
        assert s.effective_bandwidth(40) == pytest.approx(s.mem_bandwidth_gbs)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            XEON_E5_2640V4_X2.effective_cores(0)

    def test_threads_below_cores_rejected(self):
        with pytest.raises(ValueError):
            CpuSpec(
                name="bad", cores=8, threads=4, clock_ghz=2.0, flops_per_cycle=4,
                mem_bandwidth_gbs=50, per_thread_bandwidth_gbs=10, price_usd=100,
            )
