"""Tests for GBDTParams validation and ablation helpers."""

import pytest

from repro import GBDTParams
from repro.losses import LogisticLoss, SquaredErrorLoss


class TestDefaults:
    def test_paper_experimental_setting(self):
        """Section IV-A: depth 6, 40 trees, MSE, exact splits."""
        p = GBDTParams()
        assert p.n_trees == 40
        assert p.max_depth == 6
        assert isinstance(p.loss_fn, SquaredErrorLoss)

    def test_all_optimizations_on_by_default(self):
        p = GBDTParams()
        assert p.use_rle and p.use_direct_rle and p.use_smartgd
        assert p.use_custom_setkey and p.use_custom_workload
        assert p.ablation_name() == "full"


class TestValidation:
    @pytest.mark.parametrize("kw", [
        {"n_trees": 0},
        {"max_depth": 0},
        {"gamma": -0.1},
        {"lambda_": -1.0},
        {"learning_rate": 0.0},
        {"learning_rate": 1.5},
        {"rle_policy": "maybe"},
        {"setkey_c": 0},
        {"max_counter_mem_bytes": 10},
        {"fixed_thread_workload": 0},
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            GBDTParams(**kw)

    def test_loss_resolved_eagerly(self):
        with pytest.raises(ValueError, match="unknown loss"):
            GBDTParams(loss="nope")

    def test_loss_by_name(self):
        assert isinstance(GBDTParams(loss="logistic").loss_fn, LogisticLoss)


class TestReplace:
    def test_replace_returns_new_object(self):
        p = GBDTParams()
        q = p.replace(n_trees=7)
        assert q.n_trees == 7 and p.n_trees == 40

    def test_replace_revalidates(self):
        with pytest.raises(ValueError):
            GBDTParams().replace(max_depth=-1)


class TestAblationNames:
    @pytest.mark.parametrize("kw,expect", [
        ({"use_custom_setkey": False}, "no-SetKey"),
        ({"use_custom_workload": False}, "no-IdxCompWorkload"),
        ({"use_rle": False}, "no-RLE"),
        ({"use_smartgd": False}, "no-SmartGD"),
        ({"use_direct_rle": False}, "no-DirectSplitRLE"),
    ])
    def test_single_ablations(self, kw, expect):
        assert GBDTParams(**kw).ablation_name() == expect

    def test_direct_rle_irrelevant_without_rle(self):
        p = GBDTParams(use_rle=False, use_direct_rle=False)
        assert p.ablation_name() == "no-RLE"

    def test_combined(self):
        p = GBDTParams(use_rle=False, use_smartgd=False)
        assert p.ablation_name() == "no-RLE+no-SmartGD"
