"""Tests for the continual-training controller (simulated clock).

Batches here are small (64 rows of the 250-row test dataset), and PSI over
10 bins has sampling noise of roughly ``2 * bins / rows`` -- about 0.3 for
a 64-row batch -- so the default policy in these tests sets
``drift_threshold`` high enough that drift only fires where a test shifts
the data on purpose.
"""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer
from repro.pipeline import (
    CheckpointStore,
    ContinualController,
    RetrainPolicy,
)
from repro.serve import ModelRegistry

B = 64  # batch rows


@pytest.fixture
def ds(covtype_small):
    return covtype_small


@pytest.fixture
def params():
    return GBDTParams(n_trees=3, max_depth=3, seed=13)


def _holdout(ds):
    return ds.X_test.to_dense(fill=np.nan).values, ds.y_test


def _dense(ds):
    return ds.X.to_dense(fill=np.nan).values


def _controller(ds, params, *, model=None, store=None, registry=None, **policy):
    defaults = dict(
        drift_threshold=5.0,  # effectively off; drift tests lower it
        schedule_interval=100.0,
        refresh_trees=2,
        max_window_rows=256,
        min_window_rows=16,
        validation_tolerance=0.05,
    )
    defaults.update(policy)
    clock = {"now": 0.0}
    c = ContinualController(
        params,
        _holdout(ds),
        registry=registry,
        model=model,
        store=store,
        policy=RetrainPolicy(**defaults),
        clock=lambda: clock["now"],
    )
    return c, clock


class TestBootstrapAndSchedule:
    def test_bootstrap_from_window(self, ds, params):
        c, _ = _controller(ds, params)
        assert c.model is None
        c.ingest(_dense(ds)[:B], ds.y[:B], now=1.0)
        events = c.poll(now=1.0)
        assert [e.kind for e in events] == ["publish"]
        assert events[0].reason == "bootstrap"
        assert c.model is not None and c.model.n_trees == params.n_trees
        assert c.active_version is not None

    def test_below_min_window_no_refresh(self, ds, params):
        c, _ = _controller(ds, params, min_window_rows=B)
        c.ingest(_dense(ds)[: B // 2], ds.y[: B // 2], now=1.0)
        assert c.poll(now=1.0) == []

    def test_scheduled_refresh_fires_after_interval(self, ds, params):
        c, _ = _controller(ds, params, schedule_interval=100.0)
        dense = _dense(ds)
        c.ingest(dense[:B], ds.y[:B], now=0.0)
        c.poll(now=0.0)  # bootstrap
        c.ingest(dense[B : 2 * B], ds.y[B : 2 * B], now=50.0)
        assert c.poll(now=50.0) == []  # interval not yet elapsed
        c.ingest(dense[2 * B : 3 * B], ds.y[2 * B : 3 * B], now=150.0)
        events = c.poll(now=150.0)
        assert len(events) == 1 and events[0].reason == "schedule"
        assert c.model.n_trees == params.n_trees + 2  # warm-started, not rebuilt

    def test_min_retrain_interval_guards_thrash(self, ds, params):
        c, _ = _controller(
            ds, params, schedule_interval=10.0, min_retrain_interval=50.0
        )
        dense = _dense(ds)
        c.ingest(dense[:B], ds.y[:B], now=0.0)
        c.poll(now=0.0)
        c.ingest(dense[B : 2 * B], ds.y[B : 2 * B], now=20.0)
        assert c.poll(now=20.0) == []  # schedule due, but inside the guard

    def test_drift_only_policy(self, ds, params):
        c, _ = _controller(ds, params, schedule_interval=None)
        dense = _dense(ds)
        c.ingest(dense[:B], ds.y[:B], now=0.0)
        c.poll(now=0.0)
        c.ingest(dense[B : 2 * B], ds.y[B : 2 * B], now=10_000.0)
        assert c.poll(now=10_000.0) == []  # no drift, no schedule: nothing


class TestDriftTrigger:
    def test_shifted_features_trigger_drift_refresh(self, ds, params):
        c, _ = _controller(
            ds, params, schedule_interval=None, drift_threshold=0.5
        )
        dense = _dense(ds)
        c.ingest(dense[:2 * B], ds.y[:2 * B], now=0.0)
        c.poll(now=0.0)  # bootstrap
        shifted = dense[2 * B : 3 * B] + 5.0  # every feature moves
        c.ingest(shifted, ds.y[2 * B : 3 * B], now=1.0)
        events = c.poll(now=1.0)
        assert len(events) == 1 and events[0].reason == "drift"


class TestRollback:
    def test_poisoned_labels_roll_back(self, ds, params):
        registry = ModelRegistry()
        c, _ = _controller(ds, params, registry=registry, schedule_interval=10.0)
        dense = _dense(ds)
        c.ingest(dense[:B], ds.y[:B], now=0.0)
        c.poll(now=0.0)
        good_version = c.active_version
        assert good_version is not None

        rng = np.random.default_rng(7)
        poisoned = -ds.y[B : 2 * B] + rng.normal(0.0, 3.0, size=B)
        c.ingest(dense[B : 2 * B], poisoned, now=20.0)
        events = c.poll(now=20.0)
        assert [e.kind for e in events] == ["rollback"]
        # the registry serves the last good model again
        assert c.active_version == good_version
        assert c.model.n_trees == params.n_trees  # candidate not adopted
        s = c.summary()
        assert s["rollbacks"] == 1.0 and s["publishes"] == 1.0

    def test_rollback_preserves_boosting_base(self, ds, params):
        """After a rollback the next refresh warm-starts from the last good
        model, not from the rejected candidate."""
        c, _ = _controller(
            ds,
            params,
            schedule_interval=10.0,
            max_window_rows=B,  # window = most recent batch only
            validation_tolerance=0.25,
        )
        dense = _dense(ds)
        c.ingest(dense[:B], ds.y[:B], now=0.0)
        c.poll(now=0.0)
        rng = np.random.default_rng(8)
        c.ingest(dense[B : 2 * B], -ds.y[B : 2 * B] + rng.normal(0, 3, B), now=20.0)
        rolled = c.poll(now=20.0)
        assert [e.kind for e in rolled] == ["rollback"]
        # clean data again -- the same rows the good base was trained on, so
        # the refresh trees fit true residuals and validation accepts
        c.ingest(dense[:B], ds.y[:B], now=40.0)
        events = c.poll(now=40.0)
        assert len(events) == 1 and events[0].kind == "publish"
        assert c.model.n_trees == params.n_trees + 2  # good base + one refresh


class TestAdoptedModelAndCheckpoints:
    def test_pretrained_model_published_at_init(self, ds, params):
        model = GPUGBDTTrainer(params).fit(ds.X, ds.y)
        registry = ModelRegistry()
        c, _ = _controller(ds, params, model=model, registry=registry)
        assert c.active_version is not None
        assert c.model is model

    def test_accepted_refreshes_checkpoint(self, ds, params, tmp_path):
        store = CheckpointStore(tmp_path)
        c, _ = _controller(ds, params, store=store, schedule_interval=10.0)
        dense = _dense(ds)
        c.ingest(dense[:B], ds.y[:B], now=0.0)
        c.poll(now=0.0)  # bootstrap -> checkpoint at n_trees rounds
        assert store.rounds() == [params.n_trees]
        ck = store.latest(params)
        assert ck.model_digest == c.active_version

    def test_warm_start_refresh_is_cheaper_than_bootstrap(self, ds, params):
        """Modeled device time: a 2-tree warm-start refresh costs less than
        the n_trees bootstrap train, replay launch included."""
        c, _ = _controller(ds, params, schedule_interval=10.0)
        dense = _dense(ds)
        c.ingest(dense[:B], ds.y[:B], now=0.0)
        c.poll(now=0.0)
        bootstrap_s = c.modeled_train_seconds
        c.ingest(dense[B : 2 * B], ds.y[B : 2 * B], now=20.0)
        c.poll(now=20.0)
        refresh_s = c.modeled_train_seconds - bootstrap_s
        assert 0 < refresh_s < bootstrap_s
