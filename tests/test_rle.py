"""Tests for RLE compression (Section III-C), incl. hypothesis roundtrips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.rle import (
    RLE_POLICIES,
    RunLengthColumns,
    decide_compression,
    decode_segments,
    encode_segments,
    estimated_ratio,
    measured_ratio,
)


class TestEncode:
    def test_paper_example(self):
        """1.2,1.2,1.2,3.4,3.4,3.4,3.4 -> (1.2,3),(3.4,4)."""
        vals = np.array([1.2, 1.2, 1.2, 3.4, 3.4, 3.4, 3.4])
        rle = encode_segments(vals, np.array([0, 7]))
        assert list(rle.run_values) == [1.2, 3.4]
        assert list(rle.run_lengths) == [3, 4]

    def test_runs_never_cross_segments(self):
        vals = np.array([1.0, 1.0, 1.0, 1.0])
        rle = encode_segments(vals, np.array([0, 2, 4]))
        assert rle.n_runs == 2
        assert list(rle.run_offsets) == [0, 1, 2]

    def test_empty_segments(self):
        vals = np.array([5.0])
        rle = encode_segments(vals, np.array([0, 0, 1, 1]))
        assert rle.n_runs == 1
        assert list(rle.run_offsets) == [0, 0, 1, 1]

    def test_empty_input(self):
        rle = encode_segments(np.array([]), np.array([0]))
        assert rle.n_runs == 0
        assert rle.n_elements == 0

    def test_no_repetition(self):
        vals = np.array([3.0, 2.0, 1.0])
        rle = encode_segments(vals, np.array([0, 3]))
        assert rle.n_runs == 3
        assert rle.compression_ratio == pytest.approx(1.0)

    def test_element_offsets_reconstruction(self):
        vals = np.array([2.0, 2.0, 1.0, 9.0])
        rle = encode_segments(vals, np.array([0, 3, 4]))
        assert list(rle.element_offsets()) == [0, 3, 4]

    def test_run_starts(self):
        vals = np.array([2.0, 2.0, 1.0, 9.0])
        rle = encode_segments(vals, np.array([0, 3, 4]))
        assert list(rle.run_starts()) == [0, 2, 3]


class TestDecode:
    def test_roundtrip_simple(self):
        vals = np.array([4.0, 4.0, 2.0, 2.0, 2.0])
        offsets = np.array([0, 2, 5])
        out_vals, out_off = decode_segments(encode_segments(vals, offsets))
        assert np.array_equal(out_vals, vals)
        assert np.array_equal(out_off, offsets)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        """encode . decode == identity for any sorted-per-segment input."""
        n_seg = data.draw(st.integers(0, 6))
        chunks, offsets = [], [0]
        for _ in range(n_seg):
            seg = sorted(
                data.draw(st.lists(st.sampled_from([0.5, 1.0, 1.5, 2.0]), max_size=10)),
                reverse=True,
            )
            chunks.append(np.array(seg))
            offsets.append(offsets[-1] + len(seg))
        vals = np.concatenate(chunks) if chunks else np.array([])
        offsets = np.array(offsets)
        out_vals, out_off = decode_segments(encode_segments(vals, offsets))
        assert np.array_equal(out_vals, vals)
        assert np.array_equal(out_off, offsets)


class TestValidation:
    def test_zero_length_run_rejected(self):
        with pytest.raises(ValueError):
            RunLengthColumns(
                run_values=np.array([1.0]), run_lengths=np.array([0]),
                run_offsets=np.array([0, 1]),
            )

    def test_misaligned_runs_rejected(self):
        with pytest.raises(ValueError):
            RunLengthColumns(
                run_values=np.array([1.0, 2.0]), run_lengths=np.array([1]),
                run_offsets=np.array([0, 2]),
            )

    def test_nbytes_device(self):
        rle = encode_segments(np.array([1.0, 1.0]), np.array([0, 2]))
        assert rle.nbytes_device == 8 + 16


class TestPolicies:
    def test_paper_formula(self):
        """ratio = dimensionality / cardinality (Section III-C)."""
        assert estimated_ratio(100, 50) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            estimated_ratio(0, 5)

    def test_paper_policy_threshold(self):
        assert decide_compression("paper", n_rows=10, n_cols=1000, paper_threshold=1.0)
        assert not decide_compression("paper", n_rows=1000, n_cols=10, paper_threshold=1.0)

    def test_measured_policy(self):
        vals = np.ones(10)
        off = np.array([0, 10])
        assert measured_ratio(vals, off) == pytest.approx(10.0)
        assert decide_compression(
            "measured", n_rows=10, n_cols=1, values=vals, offsets=off
        )
        distinct = np.arange(10, 0, -1).astype(float)
        assert not decide_compression(
            "measured", n_rows=10, n_cols=1, values=distinct, offsets=off
        )

    def test_measured_policy_requires_data(self):
        with pytest.raises(ValueError, match="requires"):
            decide_compression("measured", n_rows=1, n_cols=1)

    def test_forced_policies(self):
        assert decide_compression("always", n_rows=1, n_cols=1)
        assert not decide_compression("never", n_rows=1, n_cols=1)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown RLE policy"):
            decide_compression("sometimes", n_rows=1, n_cols=1)

    def test_policy_registry(self):
        assert set(RLE_POLICIES) == {"paper", "measured", "always", "never"}
