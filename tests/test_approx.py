"""Tests for the histogram/approximate trainer and quantile binning."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, GpuDevice, TITAN_X_PASCAL
from repro.approx import HistogramGBDTTrainer, build_bins
from repro.approx.quantile import bin_column_values
from repro.data import CSRMatrix, build_sorted_columns, make_dataset
from repro.metrics import rmse
from tests.conftest import random_csr


def sorted_cols(X):
    return build_sorted_columns(X.to_csc())


class TestQuantileBins:
    def test_few_distinct_values_keep_one_bin_each(self):
        X = CSRMatrix.from_rows(
            [[(0, 1.0)], [(0, 2.0)], [(0, 2.0)], [(0, 3.0)]], n_cols=1
        )
        spec = build_bins(sorted_cols(X), max_bins=8)
        assert spec.n_bins(0) == 3  # values {1, 2, 3}
        assert list(spec.edges[0]) == sorted(spec.edges[0], reverse=True)

    def test_bin_of_descending_convention(self):
        X = CSRMatrix.from_rows(
            [[(0, 1.0)], [(0, 2.0)], [(0, 3.0)]], n_cols=1
        )
        spec = build_bins(sorted_cols(X), max_bins=8)
        bins = spec.bin_of(0, np.array([3.0, 2.0, 1.0]))
        assert list(bins) == [0, 1, 2]  # largest value -> bin 0

    def test_value_groups_never_straddle_bins(self):
        rng = np.random.default_rng(0)
        X = random_csr(rng, 200, 3, density=0.9, levels=5)
        cols = sorted_cols(X)
        spec = build_bins(cols, max_bins=3)  # fewer bins than levels
        for j in range(3):
            vals, _ = cols.column(j)
            bins = spec.bin_of(j, vals)
            # same value => same bin
            for v in np.unique(vals):
                assert len(set(bins[vals == v])) == 1

    def test_equi_mass_on_continuous_data(self):
        rng = np.random.default_rng(1)
        X = random_csr(rng, 1000, 1, density=1.0)
        cols = sorted_cols(X)
        spec = build_bins(cols, max_bins=8)
        vals, _ = cols.column(0)
        counts = np.bincount(spec.bin_of(0, vals), minlength=spec.n_bins(0))
        assert counts.max() <= 2.5 * counts[counts > 0].mean()

    def test_empty_column(self):
        X = CSRMatrix.from_rows([[(0, 1.0)]], n_cols=2)
        spec = build_bins(sorted_cols(X), max_bins=4)
        assert spec.n_bins(1) == 1  # no edges

    def test_max_bins_validation(self):
        X = CSRMatrix.from_rows([[(0, 1.0)]], n_cols=1)
        with pytest.raises(ValueError):
            build_bins(sorted_cols(X), max_bins=1)

    def test_bin_column_values_matches_bin_of(self):
        rng = np.random.default_rng(2)
        X = random_csr(rng, 50, 4, density=0.7)
        cols = sorted_cols(X)
        spec = build_bins(cols, max_bins=6)
        ent = bin_column_values(spec, cols)
        for j in range(4):
            lo, hi = cols.col_offsets[j], cols.col_offsets[j + 1]
            assert np.array_equal(ent[lo:hi], spec.bin_of(j, cols.values[lo:hi]))

    def test_binned_values_descending_per_column(self):
        """Descending values => non-decreasing bin indices."""
        rng = np.random.default_rng(3)
        X = random_csr(rng, 120, 3, density=0.8)
        cols = sorted_cols(X)
        spec = build_bins(cols, max_bins=5)
        ent = bin_column_values(spec, cols)
        for j in range(3):
            lo, hi = cols.col_offsets[j], cols.col_offsets[j + 1]
            assert np.all(np.diff(ent[lo:hi]) >= 0)


class TestHistogramTrainer:
    def test_exact_partitions_on_quantized_data(self, covtype_small):
        """With bins >= distinct values the candidate sets coincide, so the
        learned partitions match the exact trainer's."""
        ds = covtype_small
        p = GBDTParams(n_trees=3, max_depth=4)
        exact = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        hist = HistogramGBDTTrainer(p, max_bins=256).fit(ds.X, ds.y)
        for a, b in zip(exact.trees, hist.trees):
            assert a.attr == b.attr
            assert a.left == b.left
            assert a.n_instances == b.n_instances
            assert np.allclose(a.value, b.value, atol=1e-8)
        assert np.allclose(exact.predict(ds.X), hist.predict(ds.X))

    def test_approximation_on_continuous_data(self, susy_small):
        """Coarse bins genuinely change the trees but stay competitive --
        the LightGBM trade-off the paper contrasts against."""
        ds = susy_small
        p = GBDTParams(n_trees=5, max_depth=4)
        exact = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        hist = HistogramGBDTTrainer(p, max_bins=8).fit(ds.X, ds.y)
        e = rmse(ds.y_test, exact.predict(ds.X_test))
        a = rmse(ds.y_test, hist.predict(ds.X_test))
        assert a < e * 1.25  # close, not equal
        assert not np.allclose(exact.predict(ds.X), hist.predict(ds.X))

    def test_histograms_cost_less_than_exact_at_scale(self, susy_small):
        """The whole point of the approximate family: per level it touches
        bins, not sorted entries, and never partitions value lists."""
        ds = susy_small
        p = GBDTParams(n_trees=3, max_depth=5)
        d_exact = GpuDevice(TITAN_X_PASCAL, work_scale=ds.work_scale, seg_scale=ds.seg_scale)
        GPUGBDTTrainer(p, d_exact, row_scale=ds.row_scale).fit(ds.X, ds.y)
        d_hist = GpuDevice(TITAN_X_PASCAL, work_scale=ds.work_scale, seg_scale=ds.seg_scale)
        HistogramGBDTTrainer(p, d_hist, max_bins=32, row_scale=ds.row_scale).fit(ds.X, ds.y)
        assert d_hist.elapsed_seconds() < d_exact.elapsed_seconds()

    def test_missing_values_follow_default(self, sparse_small):
        ds = sparse_small
        p = GBDTParams(n_trees=3, max_depth=3)
        model = HistogramGBDTTrainer(p, max_bins=16).fit(ds.X, ds.y)
        pred = model.predict(ds.X_test)
        assert np.all(np.isfinite(pred))

    def test_boosting_reduces_error(self, susy_small):
        ds = susy_small
        model = HistogramGBDTTrainer(GBDTParams(n_trees=8, max_depth=4), max_bins=16).fit(
            ds.X, ds.y
        )
        hist = model.eval_history(ds.X, ds.y)
        assert hist[-1] < hist[0]

    def test_instance_counts_partition(self, covtype_small):
        ds = covtype_small
        model = HistogramGBDTTrainer(GBDTParams(n_trees=2, max_depth=4), max_bins=16).fit(
            ds.X, ds.y
        )
        for t in model.trees:
            for nid in range(t.n_nodes):
                if not t.is_leaf(nid):
                    assert (
                        t.n_instances[nid]
                        == t.n_instances[t.left[nid]] + t.n_instances[t.right[nid]]
                    )

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramGBDTTrainer(max_bins=1)
        X = CSRMatrix.from_rows([[(0, 1.0)]], n_cols=1)
        with pytest.raises(ValueError):
            HistogramGBDTTrainer(GBDTParams(n_trees=1)).fit(X, np.array([1.0]))

    def test_gamma_prunes(self, covtype_small):
        ds = covtype_small
        loose = HistogramGBDTTrainer(GBDTParams(n_trees=2, max_depth=4), max_bins=16).fit(ds.X, ds.y)
        strict = HistogramGBDTTrainer(
            GBDTParams(n_trees=2, max_depth=4, gamma=1e6), max_bins=16
        ).fit(ds.X, ds.y)
        assert sum(t.n_nodes for t in strict.trees) < sum(t.n_nodes for t in loose.trees)


class TestLossguideGrowth:
    def test_unbounded_matches_depthwise(self, susy_small):
        """With no leaf cap, per-leaf decisions are order-independent, so
        lossguide grows the same partition as depthwise."""
        ds = susy_small
        p = GBDTParams(n_trees=3, max_depth=4)
        depth = HistogramGBDTTrainer(p, max_bins=16).fit(ds.X, ds.y)
        loss = HistogramGBDTTrainer(p, max_bins=16, grow_policy="lossguide").fit(ds.X, ds.y)
        assert np.allclose(depth.predict(ds.X), loss.predict(ds.X))
        assert [t.n_leaves for t in depth.trees] == [t.n_leaves for t in loss.trees]

    def test_max_leaves_cap_respected(self, susy_small):
        ds = susy_small
        p = GBDTParams(n_trees=2, max_depth=6)
        model = HistogramGBDTTrainer(
            p, max_bins=16, grow_policy="lossguide", max_leaves=5
        ).fit(ds.X, ds.y)
        assert all(t.n_leaves <= 5 for t in model.trees)

    def test_best_first_order_splits_largest_gain_first(self, susy_small):
        """The leaf cap keeps the highest-gain subtrees: with k leaves, the
        kept internal nodes are the k-1 largest gains the unbounded tree
        would realize along the frontier."""
        ds = susy_small
        p = GBDTParams(n_trees=1, max_depth=6)
        capped = HistogramGBDTTrainer(
            p, max_bins=16, grow_policy="lossguide", max_leaves=4
        ).fit(ds.X, ds.y)
        t = capped.trees[0]
        assert t.n_leaves == 4
        # root must hold the single largest gain of its frontier
        gains = [t.gain[i] for i in range(t.n_nodes) if not t.is_leaf(i)]
        assert t.gain[0] == max(gains)

    def test_depth_still_bounds_lossguide(self, susy_small):
        ds = susy_small
        p = GBDTParams(n_trees=2, max_depth=2)
        model = HistogramGBDTTrainer(
            p, max_bins=16, grow_policy="lossguide", max_leaves=64
        ).fit(ds.X, ds.y)
        assert all(t.max_depth() <= 2 for t in model.trees)

    def test_smartgd_consistency_lossguide(self, susy_small):
        """yhat bookkeeping stays exact under best-first growth: boosting
        reduces training error monotonically enough."""
        ds = susy_small
        model = HistogramGBDTTrainer(
            GBDTParams(n_trees=8, max_depth=4), max_bins=16,
            grow_policy="lossguide", max_leaves=8,
        ).fit(ds.X, ds.y)
        hist = model.eval_history(ds.X, ds.y)
        assert hist[-1] < hist[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramGBDTTrainer(grow_policy="breadthfirst")
        with pytest.raises(ValueError):
            HistogramGBDTTrainer(max_leaves=-1)
