"""Tests for the JSONL / Prometheus / merged-Chrome-trace exporters."""

import json

from repro.gpusim.kernel import GpuDevice
from repro.gpusim.trace import chrome_trace_events, export_chrome_trace
from repro.obs import (
    DEVICE_PID,
    HOST_PID,
    MetricsRegistry,
    Tracer,
    export_merged_chrome_trace,
    jsonl_lines,
    merged_chrome_trace_events,
    prometheus_text,
    write_jsonl,
    write_prometheus,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 0.5
        return self.t


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", "completed requests", route="a").inc(3)
    reg.gauge("queue_depth", "waiting requests").set(7)
    h = reg.histogram("latency_seconds", "request wait", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.05):
        h.observe(v)
    return reg


def small_tracer() -> Tracer:
    tr = Tracer(clock=FakeClock())
    with tr.span("outer", phase="t"):
        with tr.span("inner"):
            pass
    return tr


class TestPrometheus:
    def test_golden_output(self):
        text = prometheus_text(small_registry())
        assert text == (
            "# HELP latency_seconds request wait\n"
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.001"} 1\n'
            'latency_seconds_bucket{le="0.01"} 2\n'
            'latency_seconds_bucket{le="0.1"} 3\n'
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 0.0555\n"
            "latency_seconds_count 3\n"
            "# HELP queue_depth waiting requests\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 7\n"
            "# HELP requests_total completed requests\n"
            "# TYPE requests_total counter\n"
            'requests_total{route="a"} 3\n'
        )

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", path='a\\b"c\nd').inc()
        line = prometheus_text(reg).splitlines()[-1]
        assert line == 'c_total{path="a\\\\b\\"c\\nd"} 1'

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_returns_sample_count(self, tmp_path):
        path = tmp_path / "metrics.prom"
        n = write_prometheus(path, small_registry())
        # 4 bucket lines + _sum + _count, plus the gauge and the counter
        assert n == 8
        text = path.read_text()
        assert n == sum(1 for ln in text.splitlines() if ln and not ln.startswith("#"))


class TestJsonl:
    def test_lines_parse_and_order(self):
        lines = jsonl_lines(small_tracer(), small_registry())
        objs = [json.loads(ln) for ln in lines]
        kinds = [o["kind"] for o in objs]
        assert kinds == ["span", "span", "histogram", "gauge", "counter"]
        spans = [o for o in objs if o["kind"] == "span"]
        assert [s["name"] for s in spans] == ["outer", "inner"]  # start order
        assert spans[1]["parent_id"] == spans[0]["span_id"]

    def test_write_and_append(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        n1 = write_jsonl(path, registry=small_registry())
        n2 = write_jsonl(path, registry=small_registry(), append=True)
        assert n1 == n2 == 3
        assert len(path.read_text().splitlines()) == 6

    def test_empty_inputs(self):
        assert jsonl_lines(None, None) == []
        assert jsonl_lines(Tracer(), MetricsRegistry()) == []


def run_tiny_training(device: GpuDevice) -> None:
    """Charge a few kernels through the public phase/launch API."""
    with device.phase("find_split"):
        device.launch("scan", elements=1000, flops_per_element=2.0,
                      coalesced_bytes=8000)
    with device.phase("split_node"):
        device.launch("partition", elements=1000, flops_per_element=1.0,
                      coalesced_bytes=8000)


class TestMergedChromeTrace:
    def test_merged_timeline_shape(self, tmp_path):
        tracer = small_tracer()
        device = GpuDevice()
        run_tiny_training(device)

        path = tmp_path / "merged.json"
        n = export_merged_chrome_trace(path, tracer=tracer, device=device)
        doc = json.loads(path.read_text())  # valid JSON by construction
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert n == len(slices) == 4  # 2 host spans + 2 device kernels

        # both processes present, named, and timestamps monotonic
        assert {e["pid"] for e in slices} == {HOST_PID, DEVICE_PID}
        ts = [e["ts"] for e in slices]
        assert ts == sorted(ts)
        assert min(ts) == 0.0
        assert all(e["dur"] >= 0 for e in slices)
        proc_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "host" in proc_names[HOST_PID]
        assert "gpusim" in proc_names[DEVICE_PID]

    def test_host_only_and_device_only(self):
        host = merged_chrome_trace_events(tracer=small_tracer())
        assert {e["pid"] for e in host} == {HOST_PID}
        device = GpuDevice()
        run_tiny_training(device)
        dev = merged_chrome_trace_events(device=device)
        assert {e["pid"] for e in dev} == {DEVICE_PID}

    def test_empty_inputs_export_valid_doc(self, tmp_path):
        path = tmp_path / "empty.json"
        n = export_merged_chrome_trace(path, tracer=Tracer(), device=GpuDevice())
        assert n == 0
        assert json.loads(path.read_text()) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_unclosed_span_still_exported(self):
        tr = Tracer(clock=FakeClock())
        tr.start("open_phase")
        events = merged_chrome_trace_events(tracer=tr)
        (sl,) = [e for e in events if e["ph"] == "X"]
        assert sl["name"] == "open_phase"
        assert sl["args"]["unclosed"] is True


class TestGpusimTraceErgonomics:
    def test_empty_ledger_yields_empty_valid_trace(self, tmp_path):
        device = GpuDevice()
        assert chrome_trace_events(device) == []
        path = tmp_path / "sub" / "empty.trace.json"  # parent dir is created
        n = export_chrome_trace(device, path)
        assert n == 0
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_no_pcie_row_without_transfers(self):
        device = GpuDevice()
        run_tiny_training(device)
        events = chrome_trace_events(device)
        row_names = [
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "pcie" not in row_names
        assert set(row_names) == {"find_split", "split_node"}

    def test_accepts_str_path(self, tmp_path):
        device = GpuDevice()
        run_tiny_training(device)
        n = export_chrome_trace(device, str(tmp_path / "t.json"))
        assert n == 2
