"""Calibration tests: the modeled full-scale performance must land inside
the paper's reported bands (DESIGN.md Section 6).

These run three representative Table-II datasets at their default reduced
scale with full-scale extrapolation -- the same configuration the benchmark
harness uses -- and assert the paper's headline ratios.
"""

import pytest

from repro import GBDTParams
from repro.bench.harness import run_cpu_baseline, run_gpu_gbdt
from repro.bench.pricing import normalized_ratio
from repro.data import make_dataset

#: a compressible, a dense-continuous and a high-dimensional representative
DATASETS = ("covtype", "susy", "news20")


@pytest.fixture(scope="module")
def results():
    out = {}
    p = GBDTParams(n_trees=12, max_depth=6)
    for name in DATASETS:
        ds = make_dataset(name)
        gpu = run_gpu_gbdt(ds, p)
        one, forty, _ = run_cpu_baseline(ds, p)
        out[name] = (gpu, one, forty)
    return out


class TestSpeedupBands:
    def test_vs_sequential_xgboost(self, results):
        """Abstract: 'often 10 to 20 times faster than the sequential
        version of XGBoost'."""
        for name, (gpu, one, _) in results.items():
            speedup = one.seconds / gpu.seconds
            assert 9.0 < speedup < 26.0, (name, speedup)

    def test_vs_forty_thread_xgboost(self, results):
        """Abstract: '1.5 to 2 times speedup over a 40 threaded XGBoost'."""
        for name, (gpu, _, forty) in results.items():
            speedup = forty.seconds / gpu.seconds
            assert 1.25 < speedup < 2.3, (name, speedup)

    def test_cpu_thread_scaling(self, results):
        """Table II's legible cells put xgbst-1/xgbst-40 around 6-12x."""
        for name, (_, one, forty) in results.items():
            ratio = one.seconds / forty.seconds
            assert 5.0 < ratio < 13.0, (name, ratio)


class TestEconomicBand:
    def test_performance_price_ratio(self, results):
        """Abstract: GPU-GBDT 'outperforms its CPU counterpart by 2 to 3
        times in terms of performance-price ratio' (1.5-3 in Section IV-D)."""
        for name, (gpu, _, forty) in results.items():
            r = normalized_ratio(gpu.seconds, forty.seconds)
            assert 1.5 <= r < 3.8, (name, r)


class TestPhaseShares:
    def test_split_finding_share_gpu(self, results):
        """Section IV-A: 'around 95% of that for GPU-GBDT' is split finding
        (we assert the dominant-share direction with margin)."""
        for name, (gpu, _, _) in results.items():
            total = sum(gpu.phase_seconds.values())
            share = gpu.phase_seconds["find_split"] / total
            assert share > 0.60, (name, share)

    def test_split_finding_share_cpu(self, results):
        """Section IV-A: 'around 75% of total training time for XGBoost'."""
        for name, (_, _, forty) in results.items():
            total = sum(forty.phase_seconds.values())
            share = forty.phase_seconds["find_split"] / total
            assert share > 0.55, (name, share)


class TestDepthSensitivityShape:
    def test_speedup_peaks_at_depth_2(self):
        """Section IV-B: 'Our algorithm performs best when the tree depth
        is 2, but the speedup is relatively stable when the tree depth
        increases further.'"""
        ds = make_dataset("susy")
        speedups = {}
        for depth in (2, 6):
            p = GBDTParams(n_trees=8, max_depth=depth)
            gpu = run_gpu_gbdt(ds, p)
            _, forty, _ = run_cpu_baseline(ds, p)
            speedups[depth] = forty.seconds / gpu.seconds
        assert speedups[2] >= speedups[6] * 0.95
        assert speedups[6] > 1.0
