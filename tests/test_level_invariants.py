"""Per-level invariants probed *inside* live training runs.

DESIGN.md §5's first invariant -- every (node, attribute) segment stays
descending-sorted after every order-preserving partition, at every level of
every tree -- is asserted here by wrapping the split-finding entry points
the trainer calls each level and inspecting the arrays they receive.
"""

import numpy as np
import pytest

import repro.core.trainer as trainer_mod
from repro import GBDTParams, GPUGBDTTrainer
from repro.gpusim.primitives import seg_ids


@pytest.fixture
def probe_sparse(monkeypatch):
    """Wrap find_best_splits_sparse to validate layout before each level."""
    seen = {"levels": 0}
    original = trainer_mod.find_best_splits_sparse

    def wrapper(device, values, inst, layout, *args, **kwargs):
        offsets = layout.offsets
        # 1. every segment is descending-sorted
        for s in range(layout.n_segments):
            seg = values[offsets[s] : offsets[s + 1]]
            assert np.all(np.diff(seg) <= 0), f"segment {s} unsorted at level {seen['levels']}"
        # 2. instance ids are valid and no instance appears twice per segment
        for s in range(layout.n_segments):
            ins = inst[offsets[s] : offsets[s + 1]]
            assert np.unique(ins).size == ins.size
        seen["levels"] += 1
        return original(device, values, inst, layout, *args, **kwargs)

    monkeypatch.setattr(trainer_mod, "find_best_splits_sparse", wrapper)
    return seen


@pytest.fixture
def probe_rle(monkeypatch):
    """Wrap find_best_splits_rle to validate run structure before each level."""
    seen = {"levels": 0}
    original = trainer_mod.find_best_splits_rle

    def wrapper(device, rle, inst, layout, *args, **kwargs):
        assert rle.run_lengths.min() >= 1
        assert rle.n_elements == inst.size
        # adjacent runs within a segment carry distinct, descending values
        rid = seg_ids(rle.run_offsets, rle.n_runs)
        if rle.n_runs > 1:
            same_seg = rid[1:] == rid[:-1]
            diffs = np.diff(rle.run_values)
            assert np.all(diffs[same_seg] < 0), f"runs not strictly descending at level {seen['levels']}"
        # run segmentation matches the element segmentation
        assert np.array_equal(rle.element_offsets(), layout.offsets)
        seen["levels"] += 1
        return original(device, rle, inst, layout, *args, **kwargs)

    monkeypatch.setattr(trainer_mod, "find_best_splits_rle", wrapper)
    return seen


class TestSortednessAcrossLevels:
    def test_sparse_path_every_level(self, susy_small, probe_sparse):
        ds = susy_small
        GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=5, use_rle=False)).fit(ds.X, ds.y)
        assert probe_sparse["levels"] >= 3  # probed multiple levels

    def test_sparse_path_with_missing_values(self, sparse_small, probe_sparse):
        ds = sparse_small
        GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4, use_rle=False)).fit(ds.X, ds.y)
        assert probe_sparse["levels"] >= 2

    def test_rle_path_every_level(self, covtype_small, probe_rle):
        ds = covtype_small
        GPUGBDTTrainer(
            GBDTParams(n_trees=3, max_depth=5, rle_policy="always")
        ).fit(ds.X, ds.y)
        assert probe_rle["levels"] >= 3

    def test_rle_decompression_path_every_level(self, covtype_small, probe_rle):
        ds = covtype_small
        GPUGBDTTrainer(
            GBDTParams(n_trees=2, max_depth=4, rle_policy="always", use_direct_rle=False)
        ).fit(ds.X, ds.y)
        assert probe_rle["levels"] >= 2

    def test_sparse_path_under_sampling(self, covtype_small, probe_sparse):
        ds = covtype_small
        GPUGBDTTrainer(
            GBDTParams(n_trees=3, max_depth=4, use_rle=False,
                       subsample=0.6, colsample_bytree=0.5, seed=3)
        ).fit(ds.X, ds.y)
        assert probe_sparse["levels"] >= 3
