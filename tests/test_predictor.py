"""Tests for the Section III-D prediction kernel."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, GpuDevice, TITAN_X_PASCAL
from repro.core.predictor import predict_on_device


@pytest.fixture
def trained(susy_small):
    ds = susy_small
    model = GPUGBDTTrainer(GBDTParams(n_trees=4, max_depth=4)).fit(ds.X, ds.y)
    return ds, model


class TestFunctional:
    def test_matches_host_prediction(self, trained):
        ds, model = trained
        d = GpuDevice(TITAN_X_PASCAL)
        out = predict_on_device(d, model, ds.X_test)
        assert np.allclose(out, model.predict(ds.X_test))

    def test_transform_applied(self, trained):
        ds, model = trained
        d = GpuDevice(TITAN_X_PASCAL)
        raw = predict_on_device(d, model, ds.X_test)
        tr = predict_on_device(GpuDevice(TITAN_X_PASCAL), model, ds.X_test, transform=True)
        # squared-error transform is identity
        assert np.allclose(raw, tr)


class TestCostShape:
    def test_instance_x_tree_parallelism_recorded(self, trained):
        """One thread per (instance, tree): elements = n * T."""
        ds, model = trained
        d = GpuDevice(TITAN_X_PASCAL)
        predict_on_device(d, model, ds.X_test)
        k = next(k for k in d.ledger.kernels if k.name == "predict_instance_x_tree")
        assert k.work.elements == ds.X_test.n_rows * model.n_trees

    def test_reduction_and_download_recorded(self, trained):
        ds, model = trained
        d = GpuDevice(TITAN_X_PASCAL)
        predict_on_device(d, model, ds.X_test)
        names = {k.name for k in d.ledger.kernels}
        assert "reduce_partial_predictions" in names
        assert any(t.direction == "d2h" for t in d.ledger.transfers)

    def test_row_scale_amplifies(self, trained):
        ds, model = trained
        d1 = GpuDevice(TITAN_X_PASCAL)
        predict_on_device(d1, model, ds.X_test)
        d2 = GpuDevice(TITAN_X_PASCAL)
        predict_on_device(d2, model, ds.X_test, row_scale=100.0)
        assert d2.elapsed_seconds() > d1.elapsed_seconds()

    def test_more_trees_cost_more(self, susy_small):
        ds = susy_small
        small = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=3)).fit(ds.X, ds.y)
        big = GPUGBDTTrainer(GBDTParams(n_trees=8, max_depth=3)).fit(ds.X, ds.y)
        d1, d2 = GpuDevice(TITAN_X_PASCAL), GpuDevice(TITAN_X_PASCAL)
        predict_on_device(d1, small, ds.X_test, row_scale=1000.0)
        predict_on_device(d2, big, ds.X_test, row_scale=1000.0)
        assert d2.elapsed_seconds() > d1.elapsed_seconds()

    def test_ndarray_input(self, trained):
        ds, model = trained
        d = GpuDevice(TITAN_X_PASCAL)
        dense = ds.X_test.to_dense(fill=np.nan).values
        out = predict_on_device(d, model, dense)
        assert np.allclose(out, model.predict(ds.X_test))
