"""Training determinism guards for the registry's version-by-content scheme.

The registry identifies models by a digest of their canonical JSON payload;
that is only a stable identity if training the same configuration on the
same data twice yields byte-identical payloads.
"""

import numpy as np

from repro import GBDTParams, GPUGBDTTrainer, models_equal, trees_equal
from repro.serve import ModelRegistry
from repro.serve.registry import canonical_payload


def _train(ds, seed: int, n_trees: int = 5, max_depth: int = 4):
    params = GBDTParams(n_trees=n_trees, max_depth=max_depth, seed=seed)
    return GPUGBDTTrainer(params).fit(ds.X, ds.y)


class TestTrainingDeterminism:
    def test_same_seed_same_trees(self, susy_small):
        a = _train(susy_small, seed=7)
        b = _train(susy_small, seed=7)
        assert models_equal(a, b)
        for ta, tb in zip(a.trees, b.trees):
            assert trees_equal(ta, tb)

    def test_same_seed_byte_identical_payload(self, susy_small):
        a = _train(susy_small, seed=7)
        b = _train(susy_small, seed=7)
        assert a.to_json() == b.to_json()
        assert canonical_payload(a) == canonical_payload(b)

    def test_subsampled_training_still_deterministic(self, covtype_small):
        """The seed drives row/column sampling; same seed, same subsample."""
        params = GBDTParams(n_trees=4, max_depth=3, seed=3, subsample=0.7, colsample_bytree=0.8)
        a = GPUGBDTTrainer(params).fit(covtype_small.X, covtype_small.y)
        b = GPUGBDTTrainer(params).fit(covtype_small.X, covtype_small.y)
        assert a.to_json() == b.to_json()

    def test_predictions_reproducible(self, susy_small):
        a = _train(susy_small, seed=7)
        b = _train(susy_small, seed=7)
        pa = a.predict(susy_small.X_test)
        pb = b.predict(susy_small.X_test)
        assert np.array_equal(pa, pb)


class TestVersionByContent:
    def test_same_seed_same_version(self, susy_small):
        registry = ModelRegistry()
        va = registry.publish(_train(susy_small, seed=7))
        vb = registry.publish(_train(susy_small, seed=7))
        assert va == vb
        assert registry.versions() == [va]  # deduplicated, one stored version

    def test_different_config_different_version(self, susy_small):
        """Structurally different configs hash to distinct content versions.

        (A seed change alone is *not* enough: exact-greedy training without
        subsampling is seed-independent, so same data + same structure means
        the same model -- and, correctly, the same version.)
        """
        registry = ModelRegistry()
        va = registry.publish(_train(susy_small, seed=7))
        vb = registry.publish(_train(susy_small, seed=7, max_depth=2))
        vc = registry.publish(_train(susy_small, seed=7, n_trees=2))
        assert len({va, vb, vc}) == 3
        assert registry.versions() == [va, vb, vc]

    def test_version_survives_round_trip(self, susy_small):
        """Publishing the restored model yields the same content version."""
        registry = ModelRegistry()
        model = _train(susy_small, seed=7)
        va = registry.publish(model)
        restored = registry.active().restore()
        vb = registry.publish(restored)
        assert va == vb
