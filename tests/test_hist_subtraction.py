"""Sibling histogram subtraction: exact-identity oracle + adversarial fuzz.

The subtraction trick (build only the smaller child of each sibling pair,
derive the other as ``parent - built``) rides on one exact invariant: every
histogram cell is an int64 fixed-point sum and a node's instance set is the
disjoint union of its children's, so ``parent == left + right`` holds
bit-for-bit.  These tests pin that contract at three layers:

* kernel level -- :func:`subtract_child_histogram` against independently
  accumulated child tables, including hypothesis fuzz over node/bin counts
  and extreme int64 magnitudes;
* trainer level -- an instrumented trainer that, at every level, rebuilds
  the *derived* tables by full accumulation and asserts cell-for-cell
  equality with the subtraction path's output;
* model level -- serialized byte-identity between subtraction on/off over
  the adversarial layouts (NaN blocks, constant/duplicate columns,
  duplicate rows) the hot path is worst at, and a counter-based guard that
  fails if subtraction ever silently falls back to the full-build path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GBDTParams
from repro.approx.histogram_trainer import HistogramGBDTTrainer
from repro.approx.histops import (
    accumulate_histograms,
    plan_sibling_builds,
    subtract_child_histogram,
    subtract_enabled_default,
)
from repro.data import CSRMatrix, make_dataset
from repro.obs import MetricsRegistry, use_registry

from tests.test_properties import SETTINGS, adversarial_problem

FUZZ = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ------------------------------------------------------------- kernel level
class TestSubtractKernel:
    def test_parent_minus_child_is_sibling(self):
        rng = np.random.default_rng(0)
        left = rng.integers(-(2**40), 2**40, size=(4, 17), dtype=np.int64)
        right = rng.integers(-(2**40), 2**40, size=(4, 17), dtype=np.int64)
        cl = rng.integers(0, 50, size=(4, 17), dtype=np.int64)
        cr = rng.integers(0, 50, size=(4, 17), dtype=np.int64)
        sib = subtract_child_histogram(
            left + right, left * 2 + right * 2, cl + cr, left, left * 2, cl
        )
        np.testing.assert_array_equal(sib[0], right)
        np.testing.assert_array_equal(sib[1], right * 2)
        np.testing.assert_array_equal(sib[2], cr)

    def test_out_buffers_are_filled_and_returned(self):
        parent = np.full((2, 3), 10, dtype=np.int64)
        child = np.ones((2, 3), dtype=np.int64)
        out = tuple(np.zeros((2, 3), dtype=np.int64) for _ in range(3))
        res = subtract_child_histogram(parent, parent, parent, child, child, child, out=out)
        for got, dst in zip(res, out):
            assert got is dst
            np.testing.assert_array_equal(got, 9)

    def test_negative_count_rejected(self):
        """A child not contained in the parent must fail loudly, not
        produce garbage split statistics."""
        parent = np.zeros((1, 4), dtype=np.int64)
        child = np.ones((1, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="negative sibling count"):
            subtract_child_histogram(parent, parent, parent, child, child, child)

    @given(
        st.integers(1, 6),  # sibling pairs
        st.integers(1, 40),  # total bins
        st.integers(0, 2**49),  # magnitude bound (choose_shift's own bound)
        st.integers(0, 10_000),
    )
    @FUZZ
    def test_fuzz_exactness_at_fixed_point_extremes(self, pairs, bins, bound, seed):
        rng = np.random.default_rng(seed)
        lo, hi = -bound, bound + 1
        lgq = rng.integers(lo, hi, size=(pairs, bins), dtype=np.int64)
        rgq = rng.integers(lo, hi, size=(pairs, bins), dtype=np.int64)
        lc = rng.integers(0, 1000, size=(pairs, bins), dtype=np.int64)
        rc = rng.integers(0, 1000, size=(pairs, bins), dtype=np.int64)
        sib = subtract_child_histogram(
            lgq + rgq, rgq + lgq, lc + rc, lgq, rgq, lc
        )
        np.testing.assert_array_equal(sib[0], rgq)
        np.testing.assert_array_equal(sib[1], lgq)
        np.testing.assert_array_equal(sib[2], rc)


class TestBuildPlan:
    def test_smaller_child_built_ties_go_left(self):
        build, derive = plan_sibling_builds(np.array([5, 3, 2, 2, 1, 9]))
        np.testing.assert_array_equal(build, [1, 2, 4])
        np.testing.assert_array_equal(derive, [0, 3, 5])

    def test_pairs_partition_the_level(self):
        rng = np.random.default_rng(3)
        node_n = rng.integers(1, 100, size=12)
        build, derive = plan_sibling_builds(node_n)
        assert sorted(np.concatenate([build, derive])) == list(range(12))
        np.testing.assert_array_equal(derive, build ^ 1)
        # the built side is never the larger child
        assert np.all(node_n[build] <= node_n[derive])

    def test_odd_level_rejected(self):
        with pytest.raises(ValueError, match="even number"):
            plan_sibling_builds(np.array([1, 2, 3]))


# ----------------------------------------------------- trainer-level oracle
class _OracleTrainer(HistogramGBDTTrainer):
    """Rebuilds every level's tables by full accumulation and checks the
    subtraction path reproduced them cell-for-cell."""

    levels_checked = 0
    levels_subtracted = 0

    def _find_splits(
        self, gq, hq, shift, ent_inst, ent_gbin, inst2local, n_active,
        total_bins, bin_offset, node_gq, node_hq, node_n, col_lens,
        parent=None, depth=0,
    ):
        results, tables = super()._find_splits(
            gq, hq, shift, ent_inst, ent_gbin, inst2local, n_active,
            total_bins, bin_offset, node_gq, node_hq, node_n, col_lens,
            parent=parent, depth=depth,
        )
        ref = accumulate_histograms(
            gq, hq, ent_inst, ent_gbin, inst2local, n_active, total_bins
        )[:3]
        for got, want in zip(tables, ref):
            np.testing.assert_array_equal(got, want)
        self.levels_checked += 1
        if parent is not None and n_active % 2 == 0:
            self.levels_subtracted += 1
        return results, tables


def test_every_level_matches_independent_full_build():
    ds = make_dataset("covtype", run_rows=300, seed=5)
    trainer = _OracleTrainer(
        GBDTParams(n_trees=3, max_depth=5), max_bins=16, use_subtraction=True
    )
    trainer.fit(ds.X, ds.y)
    assert trainer.levels_checked > 0
    assert trainer.levels_subtracted > 0, "subtraction never engaged"


# ------------------------------------------------------------- model level
@given(adversarial_problem(), st.sampled_from([4, 16, 64]))
@SETTINGS
def test_subtraction_on_off_byte_identity_adversarial(problem, max_bins):
    """NaN blocks, constant/duplicate columns, duplicate rows, extreme
    scales: the subtraction path must serialize byte-identically."""
    X, _, _, y, _ = problem
    p = GBDTParams(n_trees=2, max_depth=4)
    on = HistogramGBDTTrainer(p, max_bins=max_bins, use_subtraction=True).fit(X, y)
    off = HistogramGBDTTrainer(p, max_bins=max_bins, use_subtraction=False).fit(X, y)
    assert on.to_json() == off.to_json()


@pytest.mark.parametrize("use_arena", [True, False])
def test_subtraction_identity_with_arena_toggle(use_arena):
    ds = make_dataset("susy", run_rows=240, seed=1)
    p = GBDTParams(n_trees=3, max_depth=5)
    on = HistogramGBDTTrainer(
        p, max_bins=32, use_subtraction=True, use_arena=use_arena
    ).fit(ds.X, ds.y)
    off = HistogramGBDTTrainer(
        p, max_bins=32, use_subtraction=False, use_arena=use_arena
    ).fit(ds.X, ds.y)
    assert on.to_json() == off.to_json()


def test_single_row_nodes_and_deep_trees():
    """Tiny n with deep trees: sibling pairs shrink to single rows, and the
    derived tables still come out exact."""
    X = CSRMatrix.from_rows(
        [[(0, float(v))] for v in (1, 2, 3, 4, 5, 6, 7, 8)], n_cols=1
    )
    y = np.array([0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0])
    p = GBDTParams(n_trees=2, max_depth=6)
    on = HistogramGBDTTrainer(p, max_bins=8, use_subtraction=True).fit(X, y)
    off = HistogramGBDTTrainer(p, max_bins=8, use_subtraction=False).fit(X, y)
    assert on.to_json() == off.to_json()


# ----------------------------------------------------------- engagement guard
def _fit_counting_skips(use_subtraction):
    registry = MetricsRegistry()
    with use_registry(registry):
        ds = make_dataset("covtype", run_rows=300, seed=5)
        HistogramGBDTTrainer(
            GBDTParams(n_trees=3, max_depth=5), max_bins=16,
            use_subtraction=use_subtraction,
        ).fit(ds.X, ds.y)
    c = registry.get("subtract_skipped_total")
    return 0 if c is None else c.value


def test_subtraction_actually_engages():
    """The knob must do real work: a deep multi-level fit with subtraction
    on derives many sibling tables (the counter is the witness -- if the
    implementation silently fell back to full builds, this fails)."""
    assert _fit_counting_skips(True) > 0


def test_subtraction_off_never_subtracts():
    assert _fit_counting_skips(False) == 0


def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_SUBTRACT", "0")
    assert subtract_enabled_default() is False
    assert HistogramGBDTTrainer(GBDTParams()).use_subtraction is False
    monkeypatch.delenv("REPRO_SUBTRACT")
    assert subtract_enabled_default() is True
    # explicit knob beats the environment
    monkeypatch.setenv("REPRO_SUBTRACT", "0")
    assert HistogramGBDTTrainer(GBDTParams(), use_subtraction=True).use_subtraction
