"""Tests for GBDTModel: prediction composition, staging, serialization."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, models_equal
from repro.core.booster_model import GBDTModel
from repro.core.tree import DecisionTree


def leaf_tree(v):
    t = DecisionTree()
    t.add_root()
    t.set_leaf(0, v)
    return t


class TestPrediction:
    def test_sum_of_trees_plus_base(self):
        m = GBDTModel(trees=[leaf_tree(1.0), leaf_tree(0.5)], params=GBDTParams(), base_score=0.25)
        out = m.predict(np.zeros((3, 1)))
        assert np.allclose(out, 1.75)

    def test_n_trees_prefix(self):
        m = GBDTModel(trees=[leaf_tree(1.0), leaf_tree(2.0)], params=GBDTParams())
        assert m.predict(np.zeros((1, 1)), n_trees=1)[0] == 1.0
        assert m.predict(np.zeros((1, 1)), n_trees=0)[0] == 0.0

    def test_staged_predict_cumulative(self):
        m = GBDTModel(trees=[leaf_tree(1.0), leaf_tree(2.0), leaf_tree(4.0)], params=GBDTParams())
        staged = m.staged_predict(np.zeros((2, 1)))
        assert staged.shape == (3, 2)
        assert np.allclose(staged[:, 0], [1.0, 3.0, 7.0])

    def test_transform_logistic(self):
        m = GBDTModel(trees=[leaf_tree(0.0)], params=GBDTParams(loss="logistic"))
        out = m.predict(np.zeros((1, 1)), transform=True)
        assert out[0] == pytest.approx(0.5)


class TestSerialization:
    def test_json_roundtrip(self, covtype_small):
        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3)).fit(ds.X, ds.y)
        restored = GBDTModel.from_json(model.to_json(), params=model.params)
        assert models_equal(model, restored)
        assert np.allclose(model.predict(ds.X_test), restored.predict(ds.X_test))

    def test_json_preserves_base_score(self):
        m = GBDTModel(trees=[leaf_tree(1.0)], params=GBDTParams(), base_score=0.75)
        r = GBDTModel.from_json(m.to_json())
        assert r.base_score == 0.75

    def test_json_is_text(self):
        m = GBDTModel(trees=[leaf_tree(1.0)], params=GBDTParams())
        import json

        payload = json.loads(m.to_json())
        assert "trees" in payload and len(payload["trees"]) == 1


def stump(attr=0, threshold=0.5, left=-0.25, right=0.75, default_left=True):
    t = DecisionTree()
    t.add_root()
    lid, rid = t.split_node(0, attr, threshold, default_left, 1.0)
    t.set_leaf(lid, left)
    t.set_leaf(rid, right)
    return t


class TestAdversarialRoundTrip:
    """Round-trip under the degenerate shapes a pipeline can produce."""

    def test_empty_ensemble(self):
        m = GBDTModel(trees=[], params=GBDTParams(), base_score=0.5)
        r = GBDTModel.from_json(m.to_json())
        assert r.n_trees == 0
        assert r.to_json() == m.to_json()
        assert np.allclose(r.predict(np.zeros((4, 2))), 0.5)

    def test_single_stump(self):
        m = GBDTModel(trees=[stump()], params=GBDTParams(), base_score=0.0)
        r = GBDTModel.from_json(m.to_json())
        X = np.array([[1.0], [0.0], [np.nan]])
        assert np.array_equal(m.predict(X), r.predict(X))
        assert r.to_json() == m.to_json()

    def test_leaf_only_trees(self):
        m = GBDTModel(trees=[leaf_tree(0.25), leaf_tree(-1.5)], params=GBDTParams())
        r = GBDTModel.from_json(m.to_json())
        assert r.to_json() == m.to_json()
        assert np.allclose(r.predict(np.zeros((2, 1))), -1.25)

    def test_nan_threshold(self):
        """A NaN threshold must survive serialization and route identically:
        every observed value fails ``v > nan``, so only ``default_left``
        (missing) rows can go left."""
        import math

        m = GBDTModel(
            trees=[stump(threshold=float("nan"), default_left=True)],
            params=GBDTParams(),
        )
        r = GBDTModel.from_json(m.to_json())
        assert math.isnan(r.trees[0].threshold[0])
        X = np.array([[5.0], [-5.0], [np.nan]])
        out = r.predict(X)
        assert np.array_equal(out, m.predict(X))
        assert out[0] == out[1] == 0.75  # observed values go right
        assert out[2] == -0.25  # missing follows default_left

    def test_infinite_leaf_and_threshold_values(self):
        m = GBDTModel(
            trees=[stump(threshold=float("inf"), left=float("-inf"), right=1e308)],
            params=GBDTParams(),
        )
        r = GBDTModel.from_json(m.to_json())
        assert r.to_json() == m.to_json()
        X = np.array([[1.0], [np.nan]])
        assert np.array_equal(r.predict(X), m.predict(X))

    def test_double_roundtrip_is_byte_stable(self, covtype_small):
        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3)).fit(ds.X, ds.y)
        once = GBDTModel.from_json(model.to_json(), params=model.params)
        twice = GBDTModel.from_json(once.to_json(), params=model.params)
        assert model.to_json() == once.to_json() == twice.to_json()


class TestCrashSafeSave:
    def test_save_load_roundtrip(self, tmp_path):
        m = GBDTModel(trees=[stump()], params=GBDTParams(), base_score=0.1)
        path = tmp_path / "model.json"
        m.save(path)
        r = GBDTModel.load(path)
        assert r.to_json() == m.to_json()

    def test_save_is_atomic_under_kill(self, tmp_path, monkeypatch):
        from repro import ioutil
        from repro.ioutil import SimulatedCrash

        m = GBDTModel(trees=[stump()], params=GBDTParams())
        path = tmp_path / "model.json"
        m.save(path)
        before = path.read_text(encoding="utf-8")

        m2 = GBDTModel(trees=[stump(), stump()], params=GBDTParams())
        orig = ioutil.atomic_write_text

        def killing_write(p, text, **kw):
            def hook(step):
                if step == "synced":
                    raise SimulatedCrash(step)

            return orig(p, text, fault_hook=hook)

        # save() resolves atomic_write_text lazily, so patching the module
        # attribute intercepts the write
        monkeypatch.setattr(ioutil, "atomic_write_text", killing_write)
        with pytest.raises(SimulatedCrash):
            m2.save(path)
        # the kill mid-save never tore the destination
        assert path.read_text(encoding="utf-8") == before
