"""Tests for GBDTModel: prediction composition, staging, serialization."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, models_equal
from repro.core.booster_model import GBDTModel
from repro.core.tree import DecisionTree


def leaf_tree(v):
    t = DecisionTree()
    t.add_root()
    t.set_leaf(0, v)
    return t


class TestPrediction:
    def test_sum_of_trees_plus_base(self):
        m = GBDTModel(trees=[leaf_tree(1.0), leaf_tree(0.5)], params=GBDTParams(), base_score=0.25)
        out = m.predict(np.zeros((3, 1)))
        assert np.allclose(out, 1.75)

    def test_n_trees_prefix(self):
        m = GBDTModel(trees=[leaf_tree(1.0), leaf_tree(2.0)], params=GBDTParams())
        assert m.predict(np.zeros((1, 1)), n_trees=1)[0] == 1.0
        assert m.predict(np.zeros((1, 1)), n_trees=0)[0] == 0.0

    def test_staged_predict_cumulative(self):
        m = GBDTModel(trees=[leaf_tree(1.0), leaf_tree(2.0), leaf_tree(4.0)], params=GBDTParams())
        staged = m.staged_predict(np.zeros((2, 1)))
        assert staged.shape == (3, 2)
        assert np.allclose(staged[:, 0], [1.0, 3.0, 7.0])

    def test_transform_logistic(self):
        m = GBDTModel(trees=[leaf_tree(0.0)], params=GBDTParams(loss="logistic"))
        out = m.predict(np.zeros((1, 1)), transform=True)
        assert out[0] == pytest.approx(0.5)


class TestSerialization:
    def test_json_roundtrip(self, covtype_small):
        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3)).fit(ds.X, ds.y)
        restored = GBDTModel.from_json(model.to_json(), params=model.params)
        assert models_equal(model, restored)
        assert np.allclose(model.predict(ds.X_test), restored.predict(ds.X_test))

    def test_json_preserves_base_score(self):
        m = GBDTModel(trees=[leaf_tree(1.0)], params=GBDTParams(), base_score=0.75)
        r = GBDTModel.from_json(m.to_json())
        assert r.base_score == 0.75

    def test_json_is_text(self):
        m = GBDTModel(trees=[leaf_tree(1.0)], params=GBDTParams())
        import json

        payload = json.loads(m.to_json())
        assert "trees" in payload and len(payload["trees"]) == 1
