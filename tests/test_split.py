"""Tests for split finding: Eq. (2) gains against brute force, duplicate
suppression, missing-value direction, RLE/sparse equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.split import (
    SegmentLayout,
    eq2_gain,
    find_best_splits_rle,
    find_best_splits_sparse,
    quantize_gain,
)
from repro.data import build_sorted_columns, encode_segments
from repro.gpusim import GpuDevice, TITAN_X_PASCAL
from tests.conftest import random_csr

LAM = 1.0


def brute_force_best(X, g, h, lam=LAM):
    """Exhaustive candidate enumeration straight from Eq. (2): for every
    attribute, every way of cutting the descending value order (plus the
    present|missing boundary), trying missing on both sides."""
    n, d = X.shape
    G, H = g.sum(), h.sum()
    best = (-np.inf, None)  # (gain, (attr, left_instance_set, default_left))
    for a in range(d):
        entries = [(X.get(i, a), i) for i in range(n) if X.get(i, a) is not None]
        entries.sort(key=lambda t: (-t[0], t[1]))
        present = [i for _, i in entries]
        missing = [i for i in range(n) if i not in present]
        vals = [v for v, _ in entries]
        cuts = [k for k in range(1, len(entries)) if vals[k] != vals[k - 1]]
        if missing and entries:
            cuts.append(len(entries))  # present | missing boundary
        for k in cuts:
            left = present[:k]
            gl = sum(g[i] for i in left)
            hl = sum(h[i] for i in left)
            for miss_left in (True, False):
                if k == len(entries) and miss_left:
                    continue  # everything left: not a split
                gl2 = gl + (sum(g[i] for i in missing) if miss_left else 0.0)
                hl2 = hl + (sum(h[i] for i in missing) if miss_left else 0.0)
                gain = float(quantize_gain(eq2_gain(
                    np.float64(gl2), np.float64(hl2), G, H, lam
                )))
                if gain > best[0] + 1e-10:
                    best = (gain, a)
    return best


def run_sparse(X, g, h, lam=LAM, device=None):
    device = device or GpuDevice(TITAN_X_PASCAL)
    cols = build_sorted_columns(X.to_csc())
    layout = SegmentLayout(cols.col_offsets, 1, X.n_cols)
    return find_best_splits_sparse(
        device, cols.values, cols.inst, layout, g, h,
        np.array([g.sum()]), np.array([h.sum()]), np.array([X.n_rows]),
        lambda_=lam,
    )


def run_rle(X, g, h, lam=LAM):
    device = GpuDevice(TITAN_X_PASCAL)
    cols = build_sorted_columns(X.to_csc())
    rle = encode_segments(cols.values, cols.col_offsets)
    layout = SegmentLayout(cols.col_offsets, 1, X.n_cols)
    return find_best_splits_rle(
        device, rle, cols.inst, layout, g, h,
        np.array([g.sum()]), np.array([h.sum()]), np.array([X.n_rows]),
        lambda_=lam,
    )


class TestEq2Gain:
    def test_symmetric_split_of_opposite_gradients(self):
        # two instances g = +-1: splitting them apart is maximally useful
        gain = eq2_gain(np.float64(-1.0), np.float64(2.0), 0.0, 4.0, 1.0)
        assert gain == pytest.approx(0.5 * (1 / 3 + 1 / 3))

    def test_useless_split_zero_gain(self):
        # both sides have proportional G/H -> no improvement
        gain = eq2_gain(np.float64(1.0), np.float64(1.0), 2.0, 2.0, 0.0)
        assert gain == pytest.approx(0.0)

    def test_lambda_shrinks_gain(self):
        g0 = eq2_gain(np.float64(-2.0), np.float64(2.0), 0.0, 4.0, 0.1)
        g1 = eq2_gain(np.float64(-2.0), np.float64(2.0), 0.0, 4.0, 10.0)
        assert g0 > g1

    def test_nonfinite_becomes_neg_inf(self):
        out = eq2_gain(np.float64(1.0), np.float64(0.0), 1.0, 0.0, 0.0)
        assert out == -np.inf

    def test_quantize_flushes_noise(self):
        assert quantize_gain(np.array([1e-13]))[0] == 0.0
        assert quantize_gain(np.array([-np.inf]))[0] == -np.inf
        assert quantize_gain(np.array([0.5]))[0] == pytest.approx(0.5, rel=1e-7)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_best_gain_matches_exhaustive_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        X = random_csr(rng, n=18, d=4, density=0.7, levels=4 if seed % 2 else 0)
        g = rng.normal(size=18)
        h = np.full(18, 2.0)
        expect_gain, _ = brute_force_best(X, g, h)
        got = run_sparse(X, g, h)
        assert got.gain[0] == pytest.approx(expect_gain, rel=1e-5, abs=1e-7)

    @pytest.mark.parametrize("seed", range(6))
    def test_rle_matches_brute_force_too(self, seed):
        rng = np.random.default_rng(100 + seed)
        X = random_csr(rng, n=16, d=3, density=0.8, levels=3)
        g = rng.normal(size=16)
        h = np.full(16, 2.0)
        expect_gain, _ = brute_force_best(X, g, h)
        got = run_rle(X, g, h)
        assert got.gain[0] == pytest.approx(expect_gain, rel=1e-5, abs=1e-7)


class TestSparseRleEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_same_split_choice(self, seed):
        rng = np.random.default_rng(200 + seed)
        X = random_csr(rng, n=30, d=5, density=0.6, levels=4)
        g = rng.normal(size=30)
        h = np.full(30, 2.0)
        a = run_sparse(X, g, h)
        b = run_rle(X, g, h)
        assert a.attr[0] == b.attr[0]
        assert a.gain[0] == pytest.approx(b.gain[0], rel=1e-7)
        assert a.elem_pos[0] == b.elem_pos[0]
        assert a.threshold[0] == pytest.approx(b.threshold[0])
        assert a.default_left[0] == b.default_left[0]
        assert a.left_g[0] == pytest.approx(b.left_g[0], abs=1e-9)
        assert a.left_n[0] == b.left_n[0]


class TestDuplicateSuppression:
    def test_cut_inside_value_group_is_invalid(self):
        """'Reset gain of repeated split points': with values [2,2,1] the
        only valid cut is between the 2-group and the 1."""
        from repro.data import CSRMatrix

        X = CSRMatrix.from_rows(
            [[(0, 2.0)], [(0, 2.0)], [(0, 1.0)]], n_cols=1
        )
        g = np.array([-3.0, -3.0, 5.0])  # cutting between the 2s would win
        h = np.full(3, 2.0)
        got = run_sparse(X, g, h)
        # left must contain BOTH 2.0-valued instances
        assert got.left_n[0] == 2
        assert got.left_g[0] == pytest.approx(-6.0)

    def test_all_same_value_no_interior_candidate(self):
        from repro.data import CSRMatrix

        X = CSRMatrix.from_rows([[(0, 1.0)], [(0, 1.0)], [(0, 1.0)]], n_cols=1)
        g = np.array([1.0, -1.0, 1.0])
        got = run_sparse(X, g, np.full(3, 2.0))
        assert not got.found[0]  # no missing either -> nothing to cut


class TestMissingValues:
    def test_default_direction_maximizes_gain(self):
        """Missing mass goes to whichever side yields more gain (II-A)."""
        from repro.data import CSRMatrix

        # instance 2 misses attr 0; its gradient matches the LEFT group
        X = CSRMatrix.from_rows(
            [[(0, 3.0)], [(0, 1.0)], [(1, 9.9)]], n_cols=2
        )
        g = np.array([-4.0, 4.0, -4.0])
        h = np.full(3, 2.0)
        got = run_sparse(X, g, h)
        assert got.attr[0] == 0
        assert bool(got.default_left[0])
        assert got.left_g[0] == pytest.approx(-8.0)  # includes the missing one

    def test_present_vs_missing_boundary_split(self):
        """The boundary candidate separates present from missing entirely."""
        from repro.data import CSRMatrix

        X = CSRMatrix.from_rows(
            [[(0, 1.0)], [(0, 1.0)], [], []], n_cols=1
        )
        g = np.array([-5.0, -5.0, 5.0, 5.0])
        h = np.full(4, 2.0)
        got = run_sparse(X, g, h)
        assert got.found[0]
        assert got.left_n[0] == 2
        assert not bool(got.default_left[0])
        # every present value beats the threshold
        assert got.threshold[0] < 1.0

    def test_empty_attribute_cannot_split(self):
        from repro.data import CSRMatrix

        X = CSRMatrix.from_rows([[(0, 1.0)], []], n_cols=2)
        g = np.array([1.0, -1.0])
        got = run_sparse(X, g, np.full(2, 2.0))
        # attr 1 is entirely missing; only attr 0's boundary candidate exists
        assert got.attr[0] == 0


class TestMultiNode:
    def test_two_nodes_found_independently(self):
        rng = np.random.default_rng(42)
        X = random_csr(rng, n=40, d=3, density=0.9)
        g = rng.normal(size=40)
        h = np.full(40, 2.0)
        cols = build_sorted_columns(X.to_csc())
        device = GpuDevice(TITAN_X_PASCAL)

        # split instances arbitrarily into two "nodes" and build a 2-node
        # layout by partitioning each attribute's list
        node_of = (np.arange(40) % 2).astype(np.int64)
        vals_parts, inst_parts, lens = [], [], []
        for nd in range(2):
            for a in range(3):
                v, i = cols.column(a)
                m = node_of[i] == nd
                vals_parts.append(v[m])
                inst_parts.append(i[m])
                lens.append(int(m.sum()))
        offsets = np.concatenate(([0], np.cumsum(lens)))
        layout = SegmentLayout(offsets, 2, 3)
        node_g = np.array([g[node_of == 0].sum(), g[node_of == 1].sum()])
        node_h = np.array([h[node_of == 0].sum(), h[node_of == 1].sum()])
        node_n = np.array([(node_of == 0).sum(), (node_of == 1).sum()])
        got = find_best_splits_sparse(
            device, np.concatenate(vals_parts), np.concatenate(inst_parts),
            layout, g, h, node_g, node_h, node_n, lambda_=LAM,
        )

        # each node's answer equals a single-node run on its subset
        for nd in range(2):
            sub_rows = np.flatnonzero(node_of == nd)
            Xs = X.select_rows(sub_rows)
            single = run_sparse(Xs, g[sub_rows], h[sub_rows])
            assert got.attr[nd] == single.attr[0]
            assert got.gain[nd] == pytest.approx(single.gain[0], rel=1e-6)

    def test_tie_breaks_to_lowest_attribute(self):
        """Duplicate attribute columns -> identical gains -> lowest wins."""
        from repro.data import CSRMatrix

        rows = [[(0, v), (1, v)] for v in (3.0, 2.0, 1.0, 4.0)]
        X = CSRMatrix.from_rows(rows, n_cols=2)
        g = np.array([1.0, -1.0, 1.0, -1.0])
        got = run_sparse(X, g, np.full(4, 2.0))
        assert got.attr[0] == 0


class TestLayoutHelpers:
    def test_seg_maps(self):
        layout = SegmentLayout(np.zeros(7, dtype=np.int64), 2, 3)
        assert list(layout.seg_node()) == [0, 0, 0, 1, 1, 1]
        assert list(layout.seg_attr()) == [0, 1, 2, 0, 1, 2]
        assert list(layout.node_offsets()) == [0, 3, 6]

    def test_bad_offsets_length(self):
        with pytest.raises(ValueError):
            SegmentLayout(np.zeros(5, dtype=np.int64), 2, 3)


@given(st.integers(0, 10_000), st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_property_gain_never_exceeds_brute_force(seed, rnd):
    """The selected gain is the maximum over all legal candidates."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 14))
    X = random_csr(rng, n=n, d=2, density=0.7, levels=int(rng.integers(0, 4)))
    g = rng.normal(size=n)
    h = np.full(n, 2.0)
    expect_gain, _ = brute_force_best(X, g, h)
    got = run_sparse(X, g, h)
    got_gain = got.gain[0] if got.found[0] else -np.inf
    if np.isfinite(expect_gain) or np.isfinite(got_gain):
        assert got_gain == pytest.approx(expect_gain, rel=1e-5, abs=1e-7)
