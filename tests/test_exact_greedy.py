"""Tests for the independent sequential reference trainer itself."""

import numpy as np
import pytest

from repro import GBDTParams
from repro.cpu.exact_greedy import ReferenceTrainer, _guarded_midpoint
from repro.data import CSRMatrix, table1_example
from repro.metrics import rmse


class TestGuardedMidpoint:
    def test_normal_midpoint(self):
        assert _guarded_midpoint(2.0, 1.0) == 1.5

    def test_adjacent_floats_stay_strictly_below_hi(self):
        hi = 1.0
        lo = np.nextafter(hi, -np.inf)
        thr = _guarded_midpoint(hi, lo)
        assert lo <= thr < hi  # hi > thr routes hi left, lo right

    def test_huge_values(self):
        hi, lo = 1e308, 1e307
        thr = _guarded_midpoint(hi, lo)
        assert lo <= thr < hi
        assert np.isfinite(thr)


class TestTraining:
    def test_paper_example_learns(self):
        X, y = table1_example()
        model = ReferenceTrainer(GBDTParams(n_trees=5, max_depth=3, learning_rate=0.5)).fit(X, y)
        assert rmse(y, model.predict(X)) < rmse(y, np.zeros(4))

    def test_first_split_is_best_attribute(self):
        """Hand-constructed data where attr 1 perfectly separates y."""
        X = CSRMatrix.from_rows(
            [
                [(0, 5.0), (1, 1.0)],
                [(0, 1.0), (1, 1.0)],
                [(0, 4.0), (1, 9.0)],
                [(0, 2.0), (1, 9.0)],
            ],
            n_cols=2,
        )
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = ReferenceTrainer(GBDTParams(n_trees=1, max_depth=1)).fit(X, y)
        t = model.trees[0]
        assert t.attr[0] == 1
        assert 1.0 < t.threshold[0] < 9.0

    def test_pure_node_becomes_leaf(self):
        X = CSRMatrix.from_rows([[(0, 1.0)], [(0, 2.0)], [(0, 3.0)]], n_cols=1)
        y = np.array([1.0, 1.0, 1.0])  # nothing to gain by splitting
        model = ReferenceTrainer(GBDTParams(n_trees=1, max_depth=3)).fit(X, y)
        assert model.trees[0].n_nodes == 1

    def test_leaf_weight_formula(self):
        """-eta * G / (H + lambda) with g = 2(yhat - y), h = 2."""
        X = CSRMatrix.from_rows([[(0, 1.0)], [(0, 1.0)]], n_cols=1)
        y = np.array([1.0, 1.0])
        p = GBDTParams(n_trees=1, max_depth=2, learning_rate=1.0, lambda_=1.0)
        model = ReferenceTrainer(p).fit(X, y)
        # G = -4, H = 4 -> w = 4/5
        assert model.trees[0].value[0] == pytest.approx(0.8)

    def test_missing_instances_follow_default(self):
        X = CSRMatrix.from_rows(
            [[(0, 3.0)], [(0, 2.0)], [], []], n_cols=1
        )
        y = np.array([1.0, 1.0, 0.0, 0.0])
        model = ReferenceTrainer(GBDTParams(n_trees=1, max_depth=1, learning_rate=1.0)).fit(X, y)
        t = model.trees[0]
        assert t.n_nodes == 3
        # missing rows (value-less) and present rows get separated
        pred = model.predict(X)
        assert pred[0] == pred[1]
        assert pred[2] == pred[3]
        assert pred[0] != pred[2]

    def test_depth_zero_never_happens(self):
        X, y = table1_example()
        model = ReferenceTrainer(GBDTParams(n_trees=1, max_depth=1)).fit(X, y)
        assert model.trees[0].max_depth() <= 1

    def test_y_size_mismatch(self):
        X, y = table1_example()
        with pytest.raises(ValueError):
            ReferenceTrainer(GBDTParams(n_trees=1)).fit(X, y[:1])

    def test_multiple_trees_reduce_rmse_monotonically_enough(self):
        rng = np.random.default_rng(0)
        from tests.conftest import random_csr

        X = random_csr(rng, 60, 4, density=0.8)
        y = rng.normal(size=60)
        p = GBDTParams(n_trees=8, max_depth=3)
        model = ReferenceTrainer(p).fit(X, y)
        staged = model.staged_predict(X)
        errs = [rmse(y, staged[t]) for t in range(8)]
        assert errs[-1] < errs[0]
