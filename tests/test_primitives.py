"""Tests for the device primitives, including hypothesis property tests
against per-segment NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import GpuDevice, TITAN_X_PASCAL
from repro.gpusim.primitives import (
    argmax_first,
    bincount_sum,
    check_offsets,
    exclusive_cumsum,
    gather,
    seg_ids,
    segment_sort_desc,
    segmented_argmax,
    segmented_inclusive_cumsum,
    segmented_sum,
    stream_compact,
    two_way_partition,
)


def dev() -> GpuDevice:
    return GpuDevice(TITAN_X_PASCAL)


@st.composite
def segmented_array(draw, max_segments=8, max_len=12, elements=None):
    """A (values, offsets) pair with possibly-empty segments."""
    n_seg = draw(st.integers(0, max_segments))
    lens = [draw(st.integers(0, max_len)) for _ in range(n_seg)]
    offsets = np.concatenate(([0], np.cumsum(lens))).astype(np.int64)
    n = int(offsets[-1])
    elt = elements or st.floats(-100, 100, allow_nan=False, width=32)
    values = np.array([draw(elt) for _ in range(n)], dtype=np.float64)
    return values, offsets


class TestCheckOffsets:
    def test_valid(self):
        out = check_offsets(np.array([0, 2, 2, 5]), 5)
        assert out.dtype == np.int64

    def test_bad_span(self):
        with pytest.raises(ValueError, match="span"):
            check_offsets(np.array([0, 3]), 5)

    def test_decreasing(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            check_offsets(np.array([0, 3, 2, 5]), 5)

    def test_seg_ids(self):
        ids = seg_ids(np.array([0, 2, 2, 4]), 4)
        assert list(ids) == [0, 0, 2, 2]


class TestScans:
    def test_exclusive_cumsum_basic(self):
        out = exclusive_cumsum(dev(), np.array([1, 2, 3]))
        assert list(out) == [0, 1, 3]

    def test_exclusive_cumsum_empty(self):
        assert exclusive_cumsum(dev(), np.array([])).size == 0

    def test_segmented_cumsum_resets_at_boundaries(self):
        out = segmented_inclusive_cumsum(
            dev(), np.array([1.0, 1, 1, 1, 1]), np.array([0, 2, 5])
        )
        assert list(out) == [1, 2, 1, 2, 3]

    def test_segmented_cumsum_int_input(self):
        out = segmented_inclusive_cumsum(dev(), np.array([1, 2, 3]), np.array([0, 3]))
        assert out.dtype == np.int64
        assert list(out) == [1, 3, 6]

    @given(segmented_array())
    @settings(max_examples=60, deadline=None)
    def test_segmented_cumsum_matches_per_segment_reference(self, va):
        values, offsets = va
        out = segmented_inclusive_cumsum(dev(), values, offsets)
        for s in range(offsets.size - 1):
            seg = values[offsets[s] : offsets[s + 1]]
            ref = np.cumsum(seg)
            assert np.allclose(out[offsets[s] : offsets[s + 1]], ref, atol=1e-9)

    @given(segmented_array())
    @settings(max_examples=60, deadline=None)
    def test_segmented_sum_matches_reference(self, va):
        values, offsets = va
        out = segmented_sum(dev(), values, offsets)
        for s in range(offsets.size - 1):
            assert out[s] == pytest.approx(values[offsets[s] : offsets[s + 1]].sum(), abs=1e-9)


class TestArgmax:
    def test_empty_segment_yields_sentinel(self):
        mx, am = segmented_argmax(dev(), np.array([1.0, 2.0]), np.array([0, 0, 2]))
        assert mx[0] == -np.inf and am[0] == -1
        assert mx[1] == 2.0 and am[1] == 1

    def test_first_max_wins(self):
        """Tie-breaking rule the split selection relies on."""
        mx, am = segmented_argmax(dev(), np.array([5.0, 5.0, 5.0]), np.array([0, 3]))
        assert am[0] == 0

    def test_all_minus_inf(self):
        mx, am = segmented_argmax(dev(), np.array([-np.inf, -np.inf]), np.array([0, 2]))
        assert am[0] == 0  # still an index; caller filters on finiteness

    @given(segmented_array())
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, va):
        values, offsets = va
        mx, am = segmented_argmax(dev(), values, offsets)
        for s in range(offsets.size - 1):
            seg = values[offsets[s] : offsets[s + 1]]
            if seg.size == 0:
                assert am[s] == -1
            else:
                assert mx[s] == seg.max()
                assert am[s] == offsets[s] + int(np.argmax(seg))

    def test_argmax_first_whole_array(self):
        assert argmax_first(dev(), np.array([1.0, 9.0, 9.0])) == 1

    def test_argmax_first_empty_raises(self):
        with pytest.raises(ValueError):
            argmax_first(dev(), np.array([]))


class TestGatherBincount:
    def test_gather(self):
        out = gather(dev(), np.array([10.0, 20.0, 30.0]), np.array([2, 0]))
        assert list(out) == [30.0, 10.0]

    def test_bincount_sum(self):
        out = bincount_sum(dev(), np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0]), 3)
        assert list(out) == [4.0, 2.0, 0.0]

    def test_bincount_out_of_range(self):
        with pytest.raises(ValueError):
            bincount_sum(dev(), np.array([5]), np.array([1.0]), 3)


class TestTwoWayPartition:
    def test_fig2_style_split(self):
        """The paper's order-preserving partition example shape."""
        offsets = np.array([0, 4])
        side = np.array([0, 1, 0, 1], dtype=np.int8)
        dest, new_off = two_way_partition(dev(), offsets, side)
        assert list(dest) == [0, 2, 1, 3]
        assert list(new_off) == [0, 2, 4]

    def test_drop_elements(self):
        dest, new_off = two_way_partition(
            dev(), np.array([0, 3]), np.array([0, -1, 1], dtype=np.int8)
        )
        assert dest[1] == -1
        assert list(new_off) == [0, 1, 2]

    def test_bad_side_values(self):
        with pytest.raises(ValueError):
            two_way_partition(dev(), np.array([0, 1]), np.array([2], dtype=np.int8))

    @given(segmented_array(), st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_order_preservation_property(self, va, rnd):
        """Within each child, elements keep their original relative order --
        the invariant that keeps attribute values sorted (Fig. 2)."""
        values, offsets = va
        n = values.size
        side = np.array([rnd.choice([-1, 0, 1]) for _ in range(n)], dtype=np.int8)
        dest, new_off = two_way_partition(dev(), offsets, side)
        n_new = int(new_off[-1])
        out = np.full(n_new, np.nan)
        keep = dest >= 0
        out[dest[keep]] = values[keep]
        assert not np.isnan(out).any()
        for s in range(offsets.size - 1):
            seg = slice(offsets[s], offsets[s + 1])
            for child, mask_val in ((2 * s, 0), (2 * s + 1, 1)):
                expected = values[seg][side[seg] == mask_val]
                got = out[new_off[child] : new_off[child + 1]]
                assert np.array_equal(got, expected)


class TestStreamCompact:
    def test_basic(self):
        dest, count = stream_compact(dev(), np.array([True, False, True, True]))
        assert count == 3
        assert list(dest) == [0, -1, 1, 2]

    def test_empty(self):
        dest, count = stream_compact(dev(), np.array([], dtype=bool))
        assert count == 0 and dest.size == 0

    @given(st.lists(st.booleans(), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_property(self, mask):
        mask = np.array(mask, dtype=bool)
        dest, count = stream_compact(dev(), mask)
        assert count == mask.sum()
        assert sorted(dest[mask]) == list(range(count))
        assert np.all(dest[~mask] == -1)


class TestSegmentSort:
    def test_descending_stable(self):
        vals = np.array([1.0, 3.0, 3.0, 2.0])
        payload = np.array([0, 1, 2, 3])
        sv, sp = segment_sort_desc(dev(), vals, payload, np.array([0, 4]))
        assert list(sv) == [3.0, 3.0, 2.0, 1.0]
        assert list(sp) == [1, 2, 3, 0]  # equal values keep payload order

    def test_respects_segments(self):
        vals = np.array([1.0, 2.0, 5.0, 0.0])
        sv, _ = segment_sort_desc(dev(), vals, np.arange(4), np.array([0, 2, 4]))
        assert list(sv) == [2.0, 1.0, 5.0, 0.0]

    @given(segmented_array())
    @settings(max_examples=40, deadline=None)
    def test_property_sorted_desc_per_segment(self, va):
        values, offsets = va
        sv, sp = segment_sort_desc(dev(), values, np.arange(values.size), offsets)
        for s in range(offsets.size - 1):
            seg = sv[offsets[s] : offsets[s + 1]]
            assert np.all(np.diff(seg) <= 0)
            # same multiset of values per segment
            assert sorted(seg) == sorted(values[offsets[s] : offsets[s + 1]])

    def test_misaligned_payload_raises(self):
        with pytest.raises(ValueError):
            segment_sort_desc(dev(), np.ones(3), np.ones(2), np.array([0, 3]))
