"""Tests for the time-budget hyper-parameter search (case study iii)."""

import pytest

from repro import GBDTParams
from repro.data import make_dataset
from repro.ext.hyperband import SearchConfig, TimeBudgetSearch, paper_search_grid


@pytest.fixture(scope="module")
def ds():
    return make_dataset("insurance", run_rows=200, seed=21)


class TestGrid:
    def test_paper_grid_has_144_configs(self):
        """T in {500,1000,2000,4000} x d in {2,4,6,8} x gamma in {0,.1,.2}
        x eta in {.2,.3,.4} -> 144 models (Section IV-E iii)."""
        grid = paper_search_grid()
        assert len(grid) == 144
        assert {c.n_trees for c in grid} == {500, 1000, 2000, 4000}
        assert {c.max_depth for c in grid} == {2, 4, 6, 8}

    def test_quick_grid_is_small(self):
        assert len(paper_search_grid(quick=True)) == 4

    def test_config_to_params(self):
        cfg = SearchConfig(n_trees=10, max_depth=3, gamma=0.1, learning_rate=0.2)
        p = cfg.params(GBDTParams())
        assert (p.n_trees, p.max_depth, p.gamma, p.learning_rate) == (10, 3, 0.1, 0.2)


class TestEstimate:
    def test_estimate_totals(self, ds):
        grid = [
            SearchConfig(4, 2, 0.0, 0.3),
            SearchConfig(8, 2, 0.0, 0.3),
            SearchConfig(4, 4, 0.0, 0.3),
        ]
        search = TimeBudgetSearch(ds, grid, probe_trees=2)
        summary = search.estimate()
        assert summary.n_configs == 3
        assert summary.gpu_seconds_total > 0
        assert summary.cpu_seconds_total > summary.gpu_seconds_total
        # totals are per-tree rates times tree counts
        d2 = summary.per_depth_gpu_tree_seconds[2]
        d4 = summary.per_depth_gpu_tree_seconds[4]
        assert summary.gpu_seconds_total == pytest.approx(4 * d2 + 8 * d2 + 4 * d4)

    def test_deeper_trees_cost_more(self, ds):
        search = TimeBudgetSearch(
            ds, [SearchConfig(4, 2, 0.0, 0.3), SearchConfig(4, 6, 0.0, 0.3)]
        )
        summary = search.estimate()
        assert (
            summary.per_depth_gpu_tree_seconds[6]
            > summary.per_depth_gpu_tree_seconds[2]
        )

    def test_empty_grid_rejected(self, ds):
        with pytest.raises(ValueError):
            TimeBudgetSearch(ds, [])


class TestBudgetedRun:
    def test_budget_limits_configs(self, ds):
        grid = [SearchConfig(2, 2, 0.0, 0.3) for _ in range(5)]
        search = TimeBudgetSearch(ds, grid)
        run = search.run_within_budget(budget_seconds=1e-9)
        assert run.configs_trained == 1  # at least one always runs
        assert run.best_config is grid[0]

    def test_large_budget_trains_all(self, ds):
        grid = [
            SearchConfig(2, 2, 0.0, 0.3),
            SearchConfig(4, 3, 0.0, 0.3),
        ]
        run = TimeBudgetSearch(ds, grid).run_within_budget(budget_seconds=1e9)
        assert run.configs_trained == 2
        assert run.best_rmse > 0
        assert run.seconds_spent > 0

    def test_best_by_holdout_rmse(self, ds):
        """With a generous budget, the returned config is the argmin of
        held-out RMSE among those trained."""
        from repro.bench.harness import run_gpu_gbdt
        from repro.metrics import rmse

        grid = [SearchConfig(1, 1, 0.0, 0.2), SearchConfig(8, 4, 0.0, 0.3)]
        run = TimeBudgetSearch(ds, grid).run_within_budget(budget_seconds=1e9)
        errs = []
        for cfg in grid:
            res = run_gpu_gbdt(ds, cfg.params())
            errs.append(rmse(ds.y_test, res.model.predict(ds.X_test)))
        assert run.best_config == grid[int(errs.index(min(errs)))]
