"""Tests for repro.gpusim.memory (device global-memory accounting)."""

import pytest

from repro.gpusim.memory import DeviceOutOfMemory, GlobalMemory


@pytest.fixture
def mem() -> GlobalMemory:
    return GlobalMemory(capacity_bytes=1000)


class TestAlloc:
    def test_basic_alloc(self, mem):
        mem.alloc("a", 400)
        assert mem.in_use_bytes == 400
        assert mem.free_bytes == 600

    def test_oom_raises_and_rolls_back(self, mem):
        mem.alloc("a", 800)
        with pytest.raises(DeviceOutOfMemory):
            mem.alloc("b", 300)
        assert mem.in_use_bytes == 800  # failed request not recorded
        assert "b" not in mem.live_allocations()
        assert mem.oom_count == 1

    def test_exact_fit_succeeds(self, mem):
        mem.alloc("a", 1000)
        assert mem.free_bytes == 0

    def test_realloc_same_name_resizes(self, mem):
        mem.alloc("a", 400)
        mem.alloc("a", 700)  # resize, not 400+700
        assert mem.in_use_bytes == 700

    def test_realloc_can_shrink(self, mem):
        mem.alloc("a", 900)
        mem.alloc("a", 100)
        assert mem.in_use_bytes == 100
        mem.alloc("b", 800)  # now fits

    def test_negative_alloc_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.alloc("a", -1)

    def test_float_sizes_truncate(self, mem):
        mem.alloc("a", 10.9)
        assert mem.live_allocations()["a"] == 10

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            GlobalMemory(0)


class TestFree:
    def test_free_releases(self, mem):
        mem.alloc("a", 500)
        mem.free("a")
        assert mem.in_use_bytes == 0

    def test_free_unknown_raises(self, mem):
        with pytest.raises(KeyError):
            mem.free("nope")

    def test_free_all(self, mem):
        mem.alloc("a", 100)
        mem.alloc("b", 100)
        mem.free_all()
        assert mem.in_use_bytes == 0
        assert mem.live_allocations() == {}


class TestPeak:
    def test_peak_tracks_high_water(self, mem):
        mem.alloc("a", 600)
        mem.free("a")
        mem.alloc("b", 100)
        assert mem.peak_bytes == 600
        assert mem.in_use_bytes == 100

    def test_would_fit(self, mem):
        mem.alloc("a", 900)
        assert mem.would_fit(100)
        assert not mem.would_fit(101)


class TestReport:
    def test_report_lists_largest_first(self, mem):
        mem.alloc("small", 10)
        mem.alloc("big", 500)
        lines = mem.report().splitlines()
        assert "big" in lines[1]
        assert "small" in lines[2]
