"""End-to-end integration tests crossing every subsystem boundary:
LibSVM file -> training -> persistence -> inference -> analysis."""

import numpy as np
import pytest

from repro import (
    GBDTParams,
    GradientBoostedTrees,
    analyze,
    feature_importance,
    make_dataset,
    rmse,
)
from repro.core.booster_model import GBDTModel
from repro.data import dump_libsvm, load_libsvm
from repro.gpusim import GpuDevice, TITAN_X_PASCAL, export_chrome_trace


class TestFullPipeline:
    def test_libsvm_to_deployed_model(self, tmp_path):
        """The full user journey: data file in, deployable model out."""
        # 1. write a dataset to LibSVM text (what a user would start from)
        ds = make_dataset("covtype", run_rows=300, seed=42)
        data_path = tmp_path / "train.libsvm"
        dump_libsvm(data_path, ds.X, ds.y)

        # 2. load it back and analyze it
        X, y = load_libsvm(data_path, n_cols=ds.X.n_cols)
        stats = analyze(X)
        assert stats.rle_ratio > 4.0  # covtype-like: compressible

        # 3. train with eval set + early stopping
        device = GpuDevice(TITAN_X_PASCAL)
        est = GradientBoostedTrees(
            GBDTParams(n_trees=20, max_depth=4, learning_rate=0.5), device=device
        ).fit(
            X, y,
            eval_set=(ds.X_test, ds.y_test),
            early_stopping_rounds=5,
        )
        assert est.best_iteration_ is not None

        # 4. persist, reload, verify identical inference
        model_path = tmp_path / "model.json"
        est.model_.save(model_path)
        loaded = GBDTModel.load(model_path)
        assert np.allclose(est.predict(ds.X_test), loaded.predict(ds.X_test))

        # 5. importances and a trace for the profiler
        imp = feature_importance(est.model_, n_attrs=X.n_cols)
        assert imp.sum() == pytest.approx(1.0)
        n_events = export_chrome_trace(device, tmp_path / "train.trace.json")
        assert n_events > 100

        # 6. the model actually learned something
        assert rmse(ds.y_test, loaded.predict(ds.X_test)) < rmse(
            ds.y_test, np.zeros(ds.y_test.size)
        )

    def test_three_trainers_one_dataset(self):
        """Exact GPU, histogram, and reference trainers interoperate on the
        same data and agree where theory says they must."""
        from repro import GPUGBDTTrainer, HistogramGBDTTrainer, models_equal
        from repro.cpu.exact_greedy import ReferenceTrainer

        ds = make_dataset("covtype", run_rows=250, seed=9)
        p = GBDTParams(n_trees=3, max_depth=3)
        exact = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        ref = ReferenceTrainer(p).fit(ds.X, ds.y)
        hist = HistogramGBDTTrainer(p, max_bins=256).fit(ds.X, ds.y)
        assert models_equal(exact, ref)
        assert np.allclose(exact.predict(ds.X), hist.predict(ds.X))

    def test_cross_loss_pipeline(self, susy_small):
        """Each built-in loss trains, predicts finitely and transforms."""
        ds = susy_small
        for loss in ("squared_error", "logistic", "huber"):
            est = GradientBoostedTrees(
                GBDTParams(n_trees=3, max_depth=3, loss=loss)
            ).fit(ds.X, ds.y)
            out = est.predict(ds.X_test, transform=True)
            assert np.all(np.isfinite(out)), loss
