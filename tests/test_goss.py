"""GOSS (gradient-based one-side sampling) in the histogram trainer.

Sampling is the one hot-path optimization that is *not* byte-identical to
the baseline, so its contract is different from subtraction's: the draw
must be a pure function of ``(seed, round, gradients)`` (seed determinism,
bit-identical warm-start resume), the reweighting must conserve gradient
mass (the (1-a)/b amplification), and accuracy must stay within a pinned
differential gate of full-data training on a holdout.
"""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer
from repro.approx.histogram_trainer import HistogramGBDTTrainer
from repro.core.sampling import goss_sample
from repro.data import make_dataset
from repro.dist import DistributedHistTrainer
from repro.losses import goss_weighted_gradients
from repro.metrics import rmse
from repro.obs import MetricsRegistry, use_registry

PARAMS = GBDTParams(n_trees=6, max_depth=4, goss_a=0.3, goss_b=0.3, seed=7)


def _split(ds, frac=0.75):
    n = ds.X.shape[0]
    cut = int(n * frac)
    tr = np.arange(cut, dtype=np.int64)
    te = np.arange(cut, n, dtype=np.int64)
    return ds.X.select_rows(tr), ds.y[tr], ds.X.select_rows(te), ds.y[te]


# ------------------------------------------------------------------ the draw
class TestGossSample:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.g = rng.normal(size=500)

    def test_top_rows_always_kept(self):
        s = goss_sample(7, 0, self.g, 0.2, 0.3)
        n_top = round(500 * 0.2)
        top = np.argsort(-np.abs(self.g), kind="stable")[:n_top]
        assert s.inst_mask[top].all()
        assert not s.amplified[top].any()

    def test_sampled_rest_is_amplified_subset(self):
        s = goss_sample(7, 0, self.g, 0.2, 0.3)
        assert s.amplified.sum() == round(500 * 0.3)
        assert (s.amplified & ~s.inst_mask).sum() == 0
        assert s.n_kept == round(500 * 0.2) + round(500 * 0.3)
        assert s.factor == pytest.approx((1 - 0.2) / 0.3)

    def test_deterministic_per_seed_and_round(self):
        a = goss_sample(7, 3, self.g, 0.2, 0.3)
        b = goss_sample(7, 3, self.g, 0.2, 0.3)
        np.testing.assert_array_equal(a.inst_mask, b.inst_mask)
        np.testing.assert_array_equal(a.amplified, b.amplified)
        c = goss_sample(7, 4, self.g, 0.2, 0.3)
        assert not np.array_equal(a.amplified, c.amplified)

    def test_off_is_none(self):
        assert goss_sample(7, 0, self.g, 1.0, 0.3) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            goss_sample(7, 0, self.g, 0.0, 0.3)
        with pytest.raises(ValueError):
            goss_sample(7, 0, self.g, 0.5, 0.0)
        with pytest.raises(ValueError):
            goss_sample(7, 0, self.g, 0.7, 0.4)  # a + b > 1

    def test_weight_conservation(self):
        """Amplification keeps the expected gradient mass: for the constant
        hessian h=2 the reweighted total equals the full total to within the
        rounding of the two sample sizes."""
        h = np.full_like(self.g, 2.0)
        s = goss_sample(7, 0, self.g, 0.2, 0.3)
        hw = h.copy()
        gw = self.g.copy()
        goss_weighted_gradients(gw, hw, s.inst_mask, s.amplified, s.factor)
        # kept-top mass + amplified mass ~ full mass: a*n + b*n*(1-a)/b = n
        assert hw.sum() == pytest.approx(h.sum(), rel=0.02)
        # excluded rows contribute exactly nothing
        assert gw[~s.inst_mask].sum() == 0.0 and hw[~s.inst_mask].sum() == 0.0


# --------------------------------------------------------------- determinism
class TestDeterminism:
    def test_repeat_fit_is_byte_identical(self, covtype_small):
        a = HistogramGBDTTrainer(PARAMS, max_bins=32).fit(
            covtype_small.X, covtype_small.y
        )
        b = HistogramGBDTTrainer(PARAMS, max_bins=32).fit(
            covtype_small.X, covtype_small.y
        )
        assert a.to_json() == b.to_json()

    def test_warm_start_replay_identity(self, covtype_small):
        """fit(k) then fit(k+m, init_model=...) == fit(k+m) bit-for-bit:
        the GOSS draw is keyed by the *global* round index and the resumed
        margins replay exactly, so the resumed rounds see identical
        gradients, draw identical samples, and grow identical trees."""
        ds = covtype_small
        one_shot = HistogramGBDTTrainer(PARAMS, max_bins=32).fit(ds.X, ds.y)
        half = HistogramGBDTTrainer(
            PARAMS.replace(n_trees=3), max_bins=32
        ).fit(ds.X, ds.y)
        resumed = HistogramGBDTTrainer(PARAMS, max_bins=32).fit(
            ds.X, ds.y, init_model=half
        )
        assert resumed.to_json() == one_shot.to_json()

    def test_warm_start_identity_without_goss(self, covtype_small):
        """The new init_model= path is exact for plain training too."""
        ds = covtype_small
        p = GBDTParams(n_trees=6, max_depth=4, seed=7)
        one_shot = HistogramGBDTTrainer(p, max_bins=32).fit(ds.X, ds.y)
        half = HistogramGBDTTrainer(p.replace(n_trees=3), max_bins=32).fit(ds.X, ds.y)
        resumed = HistogramGBDTTrainer(p, max_bins=32).fit(
            ds.X, ds.y, init_model=half
        )
        assert resumed.to_json() == one_shot.to_json()

    def test_smartgd_matches_traversal(self, covtype_small):
        """Excluded rows get their margins by traversal (apply_tree_to);
        the two gradient strategies must still agree bit-for-bit."""
        ds = covtype_small
        smart = HistogramGBDTTrainer(PARAMS, max_bins=32).fit(ds.X, ds.y)
        trav = HistogramGBDTTrainer(
            PARAMS.replace(use_smartgd=False), max_bins=32
        ).fit(ds.X, ds.y)
        from repro import models_equal

        assert models_equal(smart, trav)

    def test_subtraction_identity_under_goss(self, covtype_small):
        """Sampling composes with subtraction: children still partition the
        (sampled) parent, so derivation stays exact."""
        ds = covtype_small
        on = HistogramGBDTTrainer(
            PARAMS, max_bins=32, use_subtraction=True
        ).fit(ds.X, ds.y)
        off = HistogramGBDTTrainer(
            PARAMS, max_bins=32, use_subtraction=False
        ).fit(ds.X, ds.y)
        assert on.to_json() == off.to_json()


# ------------------------------------------------------------- accuracy gate
def test_differential_accuracy_gate():
    """GOSS (a=0.2, b=0.2) must stay within 10% holdout RMSE of full-data
    training on the gated workload (measured headroom ~2%; a sampler that
    loses the amplification or samples the wrong side blows far past)."""
    ds = make_dataset("covtype", run_rows=1200, seed=11)
    Xtr, ytr, Xte, yte = _split(ds)
    p = GBDTParams(n_trees=20, max_depth=5)
    full = HistogramGBDTTrainer(p, max_bins=32).fit(Xtr, ytr)
    goss = HistogramGBDTTrainer(
        p.replace(goss_a=0.2, goss_b=0.2), max_bins=32
    ).fit(Xtr, ytr)
    r_full = rmse(yte, full.predict(Xte))
    r_goss = rmse(yte, goss.predict(Xte))
    assert r_goss <= r_full * 1.10, (r_goss, r_full)


def test_rows_kept_counter():
    registry = MetricsRegistry()
    with use_registry(registry):
        ds = make_dataset("covtype", run_rows=200, seed=3)
        HistogramGBDTTrainer(PARAMS, max_bins=16).fit(ds.X, ds.y)
    kept = registry.get("goss_rows_kept_total")
    n = ds.X.shape[0]
    expected_per_round = round(n * 0.3) + round(n * 0.3)
    assert kept is not None
    assert kept.value == PARAMS.n_trees * expected_per_round


# ---------------------------------------------------------------- rejections
class TestScope:
    def test_params_validation(self):
        with pytest.raises(ValueError, match="goss_a"):
            GBDTParams(goss_a=0.0)
        with pytest.raises(ValueError, match="goss_b"):
            GBDTParams(goss_a=0.5, goss_b=0.0)
        with pytest.raises(ValueError, match="goss_a \\+ goss_b"):
            GBDTParams(goss_a=0.8, goss_b=0.3)

    def test_exact_trainer_rejects(self, covtype_small):
        with pytest.raises(ValueError, match="histogram"):
            GPUGBDTTrainer(PARAMS).fit(covtype_small.X, covtype_small.y)

    def test_lossguide_rejects(self, covtype_small):
        trainer = HistogramGBDTTrainer(
            PARAMS, max_bins=16, grow_policy="lossguide", max_leaves=8
        )
        with pytest.raises(ValueError, match="depthwise"):
            trainer.fit(covtype_small.X, covtype_small.y)

    def test_distributed_rejects(self):
        with pytest.raises(ValueError, match="not supported"):
            DistributedHistTrainer(PARAMS, n_workers=2)
