"""End-to-end observability tests: instrumented training is bit-identical
and cheap, and the ``obs report`` breakdown joins wall vs modeled time."""

import json
import time

import pytest

from repro import GBDTParams, GPUGBDTTrainer, GpuDevice, models_equal
from repro.data import make_dataset
from repro.obs import (
    MetricsRegistry,
    Tracer,
    run_obs_report,
    use_registry,
    use_tracer,
)
from repro.obs.report import PHASES


def train_once(*, tracing: bool, rows: int = 300, trees: int = 4):
    """One deterministic training run under a scoped tracer/registry."""
    tracer = Tracer(enabled=tracing)
    registry = MetricsRegistry(max_label_sets=1024)
    with use_tracer(tracer), use_registry(registry):
        ds = make_dataset("covtype", run_rows=rows, seed=11)
        trainer = GPUGBDTTrainer(GBDTParams(n_trees=trees, max_depth=5), GpuDevice())
        model = trainer.fit(ds.X, ds.y)
    return model, tracer, registry


class TestDifferential:
    def test_instrumented_training_is_bit_identical(self):
        m_on, tracer, _ = train_once(tracing=True)
        m_off, tracer_off, _ = train_once(tracing=False)
        assert len(tracer) > 0
        assert len(tracer_off) == 0
        assert models_equal(m_on, m_off, rtol=0.0, atol=0.0)

    def test_training_records_expected_phases_and_metrics(self):
        _, tracer, registry = train_once(tracing=True)
        agg = tracer.aggregate()
        for phase in PHASES:
            assert phase in agg, f"missing phase span {phase!r}"
        assert agg["boost_round"].count == 4
        # per-phase spans nest inside the round/train spans
        assert agg["train"].count == 1
        assert agg["train"].total >= agg["boost_round"].total
        assert registry.counter("train_rounds_total").value == 4
        assert registry.get("train_round_seconds").count == 4
        assert registry.gauge("train_compression_ratio").value > 0


class TestOverhead:
    def test_tracing_overhead_under_ten_percent(self):
        # Interleave on/off runs and compare best-of-N wall times; the
        # min filters scheduler noise from both sides equally.  The bound
        # is on *relative* overhead, and the workspace arena shrank the
        # denominator (fit wall time) without touching tracing's ~1ms
        # absolute cost -- hence 10%, not the pre-arena 5%.  A miss earns
        # one re-measurement: the ~30ms workload's best-of-N still has a
        # noise tail that brushes the bound.
        train_once(tracing=True, rows=200, trees=2)  # warm caches/JIT-ish paths

        def measure(repeats):
            on, off = [], []
            for _ in range(repeats):
                t0 = time.perf_counter()
                train_once(tracing=True)
                on.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                train_once(tracing=False)
                off.append(time.perf_counter() - t0)
            return min(on), min(off)

        on, off = measure(6)
        if on >= off * 1.10:
            on, off = measure(8)
        assert on < off * 1.10, (on, off)


class TestObsReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_obs_report(quick=True)

    def test_split_share_consistent_with_profile(self, report):
        # the paper's Section IV-A story: split work dominates both the
        # wall-clock spans and the gpusim timeline.profile breakdown
        assert report.consistent
        assert report.wall_split_share > 0.5
        assert report.modeled_split_share > 0.5
        assert "[consistent]" in report.text

    def test_breakdowns_are_normalized(self, report):
        assert sum(report.wall[p]["share"] for p in PHASES) == pytest.approx(1.0)
        for p in PHASES:
            assert report.wall[p]["seconds"] >= 0
            assert report.modeled[p]["seconds"] >= 0
        # modeled shares come straight from timeline.profile: they are each
        # phase's fraction of total modeled time, so they sum to <= 1
        assert sum(report.modeled[p]["share"] for p in PHASES) <= 1.0 + 1e-9

    def test_report_carries_training_metrics(self, report):
        assert report.metrics["train_rounds_total"] == report.n_trees
        assert report.n_spans > 0

    def test_report_exports(self, tmp_path):
        trace = tmp_path / "merged.json"
        jsonl = tmp_path / "obs.jsonl"
        prom = tmp_path / "obs.prom"
        run_obs_report(
            quick=True, n_trees=2, trace_path=trace, jsonl_path=jsonl, prom_path=prom
        )
        doc = json.loads(trace.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in slices} == {1, 2}
        ts = [e["ts"] for e in slices]
        assert ts == sorted(ts)
        assert all(json.loads(ln) for ln in jsonl.read_text().splitlines())
        assert "train_rounds_total 2" in prom.read_text()


class TestCli:
    def test_obs_report_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "t.json"
        rc = main(["obs", "report", "--quick", "--trees", "2", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "obs report" in out
        assert "split work share" in out
        assert json.loads(trace.read_text())["traceEvents"]
