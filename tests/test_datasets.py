"""Tests for the Table-II synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import TABLE2_NAMES, TABLE2_SPECS, make_dataset, table1_example
from repro.data.rle import measured_ratio
from repro.data.sorted_columns import build_sorted_columns


class TestSpecs:
    def test_all_eight_datasets_present(self):
        assert set(TABLE2_NAMES) == {
            "covtype", "e2006", "higgs", "insurance", "log1p", "news20",
            "real-sim", "susy",
        }

    def test_full_scale_cardinalities_match_libsvm(self):
        assert TABLE2_SPECS["covtype"].n_full == 581_012
        assert TABLE2_SPECS["covtype"].d_full == 54
        assert TABLE2_SPECS["news20"].d_full == 1_355_191
        assert TABLE2_SPECS["higgs"].n_full == 11_000_000

    def test_task_types(self):
        assert TABLE2_SPECS["susy"].task == "binary"
        assert TABLE2_SPECS["e2006"].task == "regression"


class TestGeneration:
    def test_reproducible(self):
        a = make_dataset("covtype", run_rows=100, seed=5)
        b = make_dataset("covtype", run_rows=100, seed=5)
        assert a.X == b.X
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = make_dataset("covtype", run_rows=100, seed=5)
        b = make_dataset("covtype", run_rows=100, seed=6)
        assert not np.array_equal(a.y, b.y)

    def test_train_test_split_sizes(self):
        ds = make_dataset("susy", run_rows=200, test_fraction=0.25)
        assert ds.X.n_rows == 150
        assert ds.X_test.n_rows == 50
        assert ds.y.size == 150 and ds.y_test.size == 50

    def test_binary_targets_are_01(self):
        ds = make_dataset("covtype", run_rows=120)
        assert set(np.unique(ds.y)) <= {0.0, 1.0}

    def test_regression_targets_standardized(self):
        ds = make_dataset("e2006", run_rows=300, run_cols=50)
        combined = np.concatenate([ds.y, ds.y_test])
        assert abs(combined.mean()) < 0.2
        assert 0.5 < combined.std() < 2.0

    def test_no_empty_columns(self):
        ds = make_dataset("news20", run_rows=150, run_cols=40)
        csc = ds.X_test.to_csc()  # even the small split keeps shape
        assert ds.X.n_cols == 40 and csc.n_cols == 40

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("mnist")

    def test_run_rows_floor(self):
        with pytest.raises(ValueError, match="at least 8"):
            make_dataset("susy", run_rows=4)

    def test_run_cols_clamped_to_full_dim(self):
        ds = make_dataset("susy", run_rows=100, run_cols=10_000)
        assert ds.X.n_cols == TABLE2_SPECS["susy"].d_full


class TestStatisticalProfiles:
    def test_dense_vs_sparse_density(self):
        dense = make_dataset("susy", run_rows=200)
        sparse = make_dataset("real-sim", run_rows=200, run_cols=100)
        assert dense.X.density > 0.8
        assert sparse.X.density < 0.1

    def test_compressible_vs_incompressible(self):
        """covtype/insurance repeat heavily; susy/higgs do not -- the
        property the RLE policy keys on."""
        for name, compressible in [("covtype", True), ("insurance", True),
                                   ("susy", False), ("higgs", False)]:
            ds = make_dataset(name, run_rows=300)
            sc = build_sorted_columns(ds.X.to_csc())
            ratio = measured_ratio(sc.values, sc.col_offsets)
            if compressible:
                assert ratio > 4.0, name
            else:
                assert ratio < 1.5, name

    def test_targets_learnable(self):
        """A depth-limited tree must be able to reduce error below the
        majority baseline -- targets are functions of the features."""
        from repro import GBDTParams, GradientBoostedTrees
        from repro.metrics import error_rate

        ds = make_dataset("susy", run_rows=300, seed=3)
        model = GradientBoostedTrees(GBDTParams(n_trees=10, max_depth=4)).fit(ds.X, ds.y)
        err = error_rate(ds.y_test, model.predict(ds.X_test))
        assert err < 0.45  # clearly better than coin flip


class TestScales:
    def test_work_scale_reflects_full_nnz(self):
        ds = make_dataset("covtype", run_rows=200)
        assert ds.work_scale == pytest.approx(ds.spec.nnz_full / ds.X.nnz)

    def test_seg_scale_reflects_dimension(self):
        ds = make_dataset("news20", run_rows=100, run_cols=50)
        assert ds.seg_scale == pytest.approx(1_355_191 / 50)

    def test_row_scale(self):
        ds = make_dataset("susy", run_rows=200, test_fraction=0.25)
        assert ds.row_scale == pytest.approx(5_000_000 / 150)

    def test_scales_at_least_one(self):
        ds = make_dataset("covtype", run_rows=200)
        assert ds.seg_scale >= 1.0 and ds.work_scale >= 1.0

    def test_describe_mentions_full_shape(self):
        ds = make_dataset("covtype", run_rows=200)
        assert "581012" in ds.describe()


class TestTable1Example:
    def test_matches_paper(self):
        X, y = table1_example()
        assert X.shape == (4, 4)
        assert X.nnz == 8
        assert y.size == 4
