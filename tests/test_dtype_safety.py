"""Index-dtype audit: every offset / destination / rank buffer is int64.

A partition over more than 2**31 elements silently wraps if any index
buffer uses a 32-bit (or platform-dependent) integer dtype.  Three layers
of defense:

1. a static audit of the hot-path sources for forbidden index dtypes;
2. runtime checks that narrow inputs are widened to int64 on both the
   legacy and the arena paths;
3. index *arithmetic* regression tests in the >2**31 value range, run on
   small arrays by mocking the partition-plan memory threshold so the
   huge-element regime's numbers flow through the real code.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.partition import plan_partition, partition_segments
from repro.core.split import SegmentLayout
from repro.core.workspace import IDX_DTYPE, WorkspaceArena
from repro.gpusim.device import TITAN_X_PASCAL
from repro.gpusim.kernel import GpuDevice
from repro.gpusim.primitives import check_offsets

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: hot-path modules whose index buffers the audit covers
AUDITED = [
    "core/partition.py",
    "core/trainer.py",
    "core/workspace.py",
    "core/split.py",
    "core/rle_split.py",
    "gpusim/primitives.py",
]

#: dtypes that are platform-sized or too narrow for element offsets
FORBIDDEN = re.compile(
    r"dtype\s*=\s*(int\b|np\.int32\b|np\.intc\b|np\.intp\b|\"i4\"|'i4')"
    r"|astype\(\s*(int\b|np\.int32\b|np\.intc\b|np\.intp\b)"
)


def test_static_audit_no_narrow_index_dtypes():
    """No hot-path file creates an index array with a narrow/platform int."""
    offenders = []
    for rel in AUDITED:
        text = (SRC / rel).read_text(encoding="utf-8")
        for i, line in enumerate(text.splitlines(), 1):
            if FORBIDDEN.search(line):
                offenders.append(f"{rel}:{i}: {line.strip()}")
    assert not offenders, "narrow index dtypes found:\n" + "\n".join(offenders)


def test_idx_dtype_is_int64():
    assert np.dtype(IDX_DTYPE) == np.dtype(np.int64)
    assert np.dtype(IDX_DTYPE).itemsize == 8


@pytest.mark.parametrize("arena", [False, True])
def test_partition_widens_narrow_inputs(arena):
    """int32 offsets/maps in -> int64 dest/offsets out, both paths."""
    device = GpuDevice(TITAN_X_PASCAL)
    offsets = np.array([0, 3, 5], dtype=np.int32)
    side = np.array([0, 1, 0, 1, 0], dtype=np.int8)
    left = np.array([0, 1], dtype=np.int32)
    right = np.array([2, 3], dtype=np.int32)
    plan = plan_partition(5, 2, max_counter_mem_bytes=2**30)
    dest, new_off = partition_segments(
        device, offsets, side, left, right, 4, plan,
        workspace=WorkspaceArena(enabled=arena),
    )
    assert np.asarray(dest).dtype == np.int64
    assert np.asarray(new_off).dtype == np.int64


def test_workspace_index_helpers_pin_int64():
    ws = WorkspaceArena(enabled=True)
    assert ws.arange(10).dtype == np.int64
    offsets = np.array([0, 2, 2, 5], dtype=np.int32)
    sid = ws.seg_ids("t/sid", offsets, 5)
    assert sid.dtype == np.int64
    assert list(sid) == [0, 0, 2, 2, 2]


def test_segment_layout_descriptors_are_int64():
    layout = SegmentLayout(np.array([0, 2, 4, 6, 8], dtype=np.int32), 2, 2)
    assert layout.offsets.dtype == np.int64
    assert layout.seg_node().dtype == np.int64
    assert layout.node_offsets().dtype == np.int64


# ------------------------------------------------------------ >2**31 regime
N_HUGE = 2**31 + 11  # one more than int32 can index


def test_check_offsets_past_int32_range():
    """Offset *values* beyond 2**31 validate and round-trip exactly."""
    offsets = np.array([0, 2**31 - 1, N_HUGE], dtype=np.int64)
    out = check_offsets(offsets, N_HUGE)
    assert out.dtype == np.int64
    assert int(out[-1]) == N_HUGE


def test_plan_partition_huge_elements_with_mocked_threshold():
    """The plan's thread/counter arithmetic for a 2**31+ element partition,
    forced through the multi-pass branch by mocking the counter-memory
    threshold down to 1 MiB.  Every derived quantity must be an exact
    (non-wrapped, non-negative) Python/int64 number."""
    plan = plan_partition(
        N_HUGE, 4096, max_counter_mem_bytes=1 << 20, use_custom_workload=True
    )
    assert plan.n_values == N_HUGE
    assert plan.n_threads * plan.thread_workload >= N_HUGE
    assert plan.counter_bytes >= 0 and plan.passes >= 1
    # the fixed-workload policy overflows the budget instead of growing the
    # per-thread workload -- the pass count must still be exact
    fixed = plan_partition(
        N_HUGE, 4096, max_counter_mem_bytes=1 << 20, use_custom_workload=False
    )
    assert fixed.n_threads == -(-N_HUGE // fixed.thread_workload)
    assert fixed.counter_bytes == fixed.n_threads * fixed.n_partitions * 4
    assert fixed.passes == -(-fixed.counter_bytes // (1 << 20))
    assert fixed.counter_bytes > 2**31  # the quantity that would have wrapped


def test_segment_layout_offsets_past_int32_range():
    """A layout whose segment boundaries live beyond 2**31: descriptor
    caches are segment-sized, so the huge element count costs nothing."""
    base = 2**31
    offsets = np.array([0, base, base + 7, 2 * base], dtype=np.int64)
    layout = SegmentLayout(offsets, 3, 1)
    assert layout.n_elements == 2 * base
    assert np.array_equal(layout.seg_node(), [0, 1, 2])
    # element offsets keep their >2**31 values exactly
    assert layout.offsets.dtype == np.int64
    assert int(layout.offsets[-1] - layout.offsets[1]) == base


def test_arena_scatter_math_past_int32_range():
    """dest = segment base + rank stays exact with bases beyond 2**31
    (the arithmetic the fused partition performs per element)."""
    seg_base = np.array([0, 2**31 + 3], dtype=IDX_DTYPE)
    rank = np.array([5, 7], dtype=IDX_DTYPE)
    dest = seg_base + rank
    assert dest.dtype == np.int64
    assert int(dest[1]) == 2**31 + 10
