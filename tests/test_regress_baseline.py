"""Tier-1 cost-model regression gate against ``results/baseline.json``.

The CLI has always supported ``--compare`` for ad-hoc drift checks; this
wires the same machinery into the default test run, so a PR that moves any
modeled number beyond tolerance fails CI instead of slipping by unnoticed.

Only the cheap full-scale experiments are recomputed here (the complete
sweep is ``make compare``); they exercise the whole cost model -- device
specs, kernel launches, transfer and memory accounting -- end to end.
"""

import json
from pathlib import Path

import pytest

from repro.bench import experiments
from repro.bench.regress import compare_results, load_results, to_payload

BASELINE = Path(__file__).resolve().parent.parent / "results" / "baseline.json"

#: fast-to-recompute experiments (seconds each, full scale) that still cover
#: the cost model broadly: CPU thread scaling, multi-GPU partitioning and
#: the cross-device sweep
CHECKED = {
    "threads": experiments.run_thread_sweep,
    "multigpu": experiments.run_multigpu_scaling,
    "devices": experiments.run_device_sweep,
}

RTOL = 0.05


@pytest.fixture(scope="module")
def baseline_doc():
    if not BASELINE.exists():
        pytest.skip("results/baseline.json not present")
    return load_results(BASELINE)


@pytest.mark.parametrize("name", sorted(CHECKED))
def test_modeled_numbers_match_baseline(baseline_doc, name):
    assert name in baseline_doc["experiments"], f"{name} missing from baseline"
    fresh = {"experiments": {name: to_payload(CHECKED[name](False))}}
    old = {"experiments": {name: baseline_doc["experiments"][name]}}
    drifts = compare_results(old, fresh, rtol=RTOL)
    assert not drifts, "cost-model drift vs results/baseline.json:\n" + "\n".join(
        f"  {d}" for d in drifts
    )


def test_baseline_document_is_wellformed():
    if not BASELINE.exists():
        pytest.skip("results/baseline.json not present")
    doc = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert "experiments" in doc and "meta" in doc
    assert doc["meta"].get("quick") is False, "baseline must be full-scale"
