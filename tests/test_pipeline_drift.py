"""Tests for streaming drift detection (PSI)."""

import numpy as np
import pytest

from repro.pipeline import (
    DriftMonitor,
    FeatureDriftDetector,
    PredictionDriftDetector,
    psi,
)


def test_psi_zero_for_identical_fractions():
    assert psi([10, 20, 30], [1, 2, 3]) == pytest.approx(0.0)


def test_psi_positive_for_shifted_mass():
    assert psi([25, 25, 25, 25], [70, 10, 10, 10]) > 0.25


def test_psi_empty_counts_score_zero():
    assert psi([0, 0], [0, 0]) == 0.0


def test_psi_shape_mismatch_raises():
    with pytest.raises(ValueError):
        psi([1, 2], [1, 2, 3])


class TestPredictionDetector:
    def test_same_distribution_is_stable(self):
        rng = np.random.default_rng(0)
        ref = rng.normal(size=4000)
        det = PredictionDriftDetector(ref)
        det.update(rng.normal(size=4000))
        assert det.score() < 0.05

    def test_shift_is_detected(self):
        rng = np.random.default_rng(0)
        det = PredictionDriftDetector(rng.normal(size=4000))
        det.update(rng.normal(loc=1.5, size=4000))
        assert det.score() > 0.25

    def test_incremental_equals_one_shot(self):
        rng = np.random.default_rng(1)
        ref = rng.normal(size=2000)
        stream = rng.normal(loc=0.4, size=1200)

        inc = PredictionDriftDetector(ref)
        for chunk in np.array_split(stream, 7):
            inc.update(chunk)
        one = PredictionDriftDetector(ref)
        one.update(stream)
        assert inc.score() == pytest.approx(one.score(), abs=0)
        assert inc.n_seen == one.n_seen == stream.size

    def test_reset_clears_counts(self):
        rng = np.random.default_rng(2)
        det = PredictionDriftDetector(rng.normal(size=500))
        det.update(rng.normal(loc=3.0, size=500))
        det.reset()
        assert det.n_seen == 0
        det.update(rng.normal(size=500))
        assert det.score() < 0.15  # sampling noise only, far below the shift


class TestFeatureDetector:
    def test_per_feature_scores(self):
        rng = np.random.default_rng(3)
        ref = rng.normal(size=(2000, 3))
        det = FeatureDriftDetector(ref)
        batch = rng.normal(size=(2000, 3))
        batch[:, 1] += 2.0  # only feature 1 drifts
        det.update(batch)
        scores = det.feature_scores()
        assert scores[1] > 0.25
        assert scores[0] < 0.1 and scores[2] < 0.1

    def test_missingness_shift_registers(self):
        rng = np.random.default_rng(4)
        ref = rng.normal(size=(1000, 1))
        det = FeatureDriftDetector(ref)
        batch = rng.normal(size=(1000, 1))
        batch[:600, 0] = np.nan  # values unchanged, missingness exploded
        det.update(batch)
        assert det.feature_scores()[0] > 0.25

    def test_constant_feature_stays_quiet(self):
        ref = np.hstack([np.ones((200, 1)), np.arange(200).reshape(-1, 1)])
        det = FeatureDriftDetector(ref)
        det.update(ref)
        assert np.all(det.feature_scores() < 1e-6)

    def test_column_mismatch_raises(self):
        det = FeatureDriftDetector(np.zeros((10, 2)) + np.arange(10).reshape(-1, 1))
        with pytest.raises(ValueError):
            det.update(np.zeros((5, 3)))


class TestMonitor:
    def _monitor(self, rng):
        ref_X = rng.normal(size=(1500, 2))
        ref_pred = rng.normal(size=1500)
        return DriftMonitor(ref_X, ref_pred), ref_X, ref_pred

    def test_report_score_is_worst_of_both(self):
        rng = np.random.default_rng(5)
        mon, _, _ = self._monitor(rng)
        X = rng.normal(size=(1500, 2))
        X[:, 0] += 2.0
        mon.observe(X, rng.normal(size=1500))  # features drift, preds do not
        rep = mon.report()
        assert rep.score == rep.max_feature_psi > rep.prediction_psi
        assert rep.top_features[0] == 0
        assert mon.drifted(0.25)

    def test_rebase_quiets_a_drifted_stream(self):
        rng = np.random.default_rng(6)
        mon, _, _ = self._monitor(rng)
        X = rng.normal(loc=2.0, size=(1500, 2))
        preds = rng.normal(loc=1.0, size=1500)
        mon.observe(X, preds)
        assert mon.drifted(0.25)
        mon.rebase(X, preds)
        mon.observe(
            rng.normal(loc=2.0, size=(1500, 2)), rng.normal(loc=1.0, size=1500)
        )
        assert not mon.drifted(0.25)

    def test_for_model_uses_model_predictions(self, covtype_small):
        from repro import GBDTParams, GPUGBDTTrainer

        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=3)).fit(ds.X, ds.y)
        dense = ds.X.to_dense(fill=np.nan).values
        mon = DriftMonitor.for_model(model, dense)
        mon.observe(dense, model.predict(dense))
        # same rows, same model: nothing drifted
        assert mon.report().score < 0.05
