"""Tests for DecisionTree.apply and the package's docstring examples."""

import doctest

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer


class TestApply:
    def test_apply_returns_leaf_ids(self, covtype_small):
        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=3)).fit(ds.X, ds.y)
        for t in model.trees:
            leaves = t.apply(ds.X)
            assert leaves.shape == (ds.X.n_rows,)
            assert all(t.is_leaf(int(l)) for l in np.unique(leaves))

    def test_apply_consistent_with_predict(self, covtype_small):
        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=3)).fit(ds.X, ds.y)
        t = model.trees[0]
        leaves = t.apply(ds.X_test)
        values = np.asarray(t.value)[leaves]
        assert np.array_equal(values, t.predict(ds.X_test))

    def test_apply_leaf_population_matches_training(self, covtype_small):
        """Routing the training data reproduces each leaf's recorded
        instance count -- training placement == inference placement."""
        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(ds.X, ds.y)
        for t in model.trees:
            leaves = t.apply(ds.X)
            counts = np.bincount(leaves, minlength=t.n_nodes)
            for nid in range(t.n_nodes):
                if t.is_leaf(nid):
                    assert counts[nid] == t.n_instances[nid]


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.losses",
            "repro.data.matrix",
            "repro.data.datasets",
        ],
    )
    def test_module_doctests(self, module_name):
        import importlib

        mod = importlib.import_module(module_name)
        results = doctest.testmod(mod, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0  # the examples actually exist
