"""Adversarial-structure integration tests: degenerate datasets that stress
the segment machinery (empty columns, all-missing columns, single values,
extreme sparsity, deep trees on tiny data)."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, models_equal
from repro.cpu.exact_greedy import ReferenceTrainer
from repro.data import CSRMatrix


def both(X, y, **kw):
    p = GBDTParams(n_trees=3, max_depth=4, **kw)
    a = GPUGBDTTrainer(p).fit(X, y)
    b = ReferenceTrainer(p).fit(X, y)
    assert models_equal(a, b)
    return a


class TestDegenerateColumns:
    def test_totally_empty_column(self):
        """An attribute no instance has can never be chosen."""
        X = CSRMatrix.from_rows(
            [[(0, 1.0)], [(0, 2.0)], [(0, 3.0)], [(0, 4.0)]], n_cols=3
        )
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = both(X, y)
        used = {a for t in model.trees for a in t.attr if a >= 0}
        assert used <= {0}

    def test_constant_column_with_missing(self):
        """A binary indicator column: the only cut is present|missing."""
        X = CSRMatrix.from_rows(
            [[(0, 1.0)], [(0, 1.0)], [], []], n_cols=1
        )
        y = np.array([1.0, 1.0, 0.0, 0.0])
        model = both(X, y, learning_rate=1.0)
        pred = model.predict(X)
        assert pred[0] == pred[1] and pred[2] == pred[3]
        assert abs(pred[0] - 1.0) < 0.2 and abs(pred[2]) < 0.2

    def test_single_entry_column(self):
        X = CSRMatrix.from_rows(
            [[(0, 1.0), (1, 9.0)], [(0, 2.0)], [(0, 3.0)]], n_cols=2
        )
        y = np.array([1.0, 0.0, 0.5])
        both(X, y)

    def test_every_instance_distinct_in_one_column(self):
        rng = np.random.default_rng(0)
        n = 30
        X = CSRMatrix.from_rows([[(0, float(i) + 0.5)] for i in range(n)], n_cols=1)
        y = rng.normal(size=n)
        both(X, y)


class TestExtremeShapes:
    def test_two_instances(self):
        X = CSRMatrix.from_rows([[(0, 1.0)], [(0, 2.0)]], n_cols=1)
        y = np.array([0.0, 1.0])
        model = both(X, y)
        assert model.trees[0].n_nodes == 3

    def test_single_column_many_rows(self):
        rng = np.random.default_rng(1)
        n = 200
        X = CSRMatrix.from_rows(
            [[(0, float(v))] for v in rng.integers(0, 5, size=n)], n_cols=1
        )
        y = rng.normal(size=n)
        both(X, y)

    def test_wide_and_short(self):
        rng = np.random.default_rng(2)
        rows = []
        for i in range(10):
            cols = rng.choice(50, size=5, replace=False)
            rows.append([(int(c), float(rng.uniform(1, 3))) for c in sorted(cols)])
        X = CSRMatrix.from_rows(rows, n_cols=50)
        y = rng.normal(size=10)
        both(X, y)

    def test_depth_larger_than_log_n(self):
        """max_depth 8 on 12 instances: trees terminate early when nodes
        become unsplittable."""
        rng = np.random.default_rng(3)
        X = CSRMatrix.from_rows(
            [[(0, float(rng.uniform(0, 1)))] for _ in range(12)], n_cols=1
        )
        y = rng.normal(size=12)
        p = GBDTParams(n_trees=2, max_depth=8)
        model = GPUGBDTTrainer(p).fit(X, y)
        for t in model.trees:
            for nid in range(t.n_nodes):
                if t.is_leaf(nid):
                    assert t.n_instances[nid] >= 1


class TestNumericExtremes:
    def test_huge_and_tiny_values(self):
        X = CSRMatrix.from_rows(
            [[(0, 1e12)], [(0, 1e-12)], [(0, 1.0)], [(0, -1e12)]], n_cols=1
        )
        y = np.array([1.0, 0.0, 0.5, 0.0])
        model = both(X, y)
        assert np.all(np.isfinite(model.predict(X)))

    def test_negative_values_sort_correctly(self):
        X = CSRMatrix.from_rows(
            [[(0, -3.0)], [(0, -1.0)], [(0, -2.0)], [(0, 0.5)]], n_cols=1
        )
        y = np.array([0.0, 1.0, 0.0, 1.0])
        both(X, y)

    def test_large_targets(self):
        X = CSRMatrix.from_rows([[(0, 1.0)], [(0, 2.0)], [(0, 3.0)]], n_cols=1)
        y = np.array([1e6, 2e6, 3e6])
        model = both(X, y)
        pred = model.predict(X)
        assert np.all(np.isfinite(pred)) and pred.max() > 1e5


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, covtype_small):
        from repro.core.booster_model import GBDTModel

        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=3)).fit(ds.X, ds.y)
        path = tmp_path / "model.json"
        model.save(path)
        loaded = GBDTModel.load(path)
        assert np.allclose(model.predict(ds.X_test), loaded.predict(ds.X_test))

    def test_eval_history_decreases(self, susy_small):
        ds = susy_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=8, max_depth=4)).fit(ds.X, ds.y)
        hist = model.eval_history(ds.X, ds.y)
        assert hist.shape == (8,)
        assert hist[-1] < hist[0]

    def test_eval_history_custom_metric(self, susy_small):
        from repro.metrics import error_rate

        ds = susy_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=4, max_depth=4)).fit(ds.X, ds.y)
        hist = model.eval_history(ds.X_test, ds.y_test, metric=error_rate)
        assert np.all((hist >= 0) & (hist <= 1))
