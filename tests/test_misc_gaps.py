"""Small targeted tests for less-travelled paths."""

import dataclasses

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer
from repro.bench.harness import run_gpu_gbdt
from repro.data import make_dataset


class TestHarnessOOMPath:
    def test_gpu_gbdt_oom_reported_not_raised(self):
        """Even GPU-GBDT has a ceiling; the harness reports it as a row
        status instead of crashing the experiment."""
        base = make_dataset("susy", run_rows=200)
        huge = dataclasses.replace(
            base,
            spec=dataclasses.replace(
                base.spec, n_full=2_000_000_000, d_full=18, density_full=0.98
            ),
        )
        res = run_gpu_gbdt(huge, GBDTParams(n_trees=1, max_depth=3))
        assert res.status == "oom"
        assert res.seconds is None
        assert res.train_rmse is None
        assert not res.ok


class TestModelEdges:
    def test_predict_with_negative_n_trees_clamped(self, susy_small):
        ds = susy_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=2)).fit(ds.X, ds.y)
        out = model.predict(ds.X_test, n_trees=-5)
        assert np.allclose(out, model.base_score)

    def test_models_equal_tree_count_mismatch(self, susy_small):
        from repro import models_equal

        ds = susy_small
        a = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=2)).fit(ds.X, ds.y)
        b = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=2)).fit(ds.X, ds.y)
        assert not models_equal(a, b)


class TestAnalysisFields:
    def test_rows_per_attr_mean(self):
        from repro.data import CSRMatrix
        from repro.data.analysis import analyze

        X = CSRMatrix.from_rows(
            [[(0, 1.0), (1, 2.0)], [(0, 1.0)]], n_cols=2
        )
        st = analyze(X)
        assert st.rows_per_attr_mean == pytest.approx(1.5)


class TestPredictorTransform:
    def test_logistic_transform_through_device(self, susy_small):
        from repro import GpuDevice, TITAN_X_PASCAL
        from repro.core.predictor import predict_on_device

        ds = susy_small
        model = GPUGBDTTrainer(
            GBDTParams(n_trees=3, max_depth=2, loss="logistic")
        ).fit(ds.X, ds.y)
        out = predict_on_device(GpuDevice(TITAN_X_PASCAL), model, ds.X_test, transform=True)
        assert np.all((out >= 0) & (out <= 1))


class TestSetKeyAblationGridRecording:
    def test_disabled_setkey_records_seg_scaled_grids(self, covtype_small):
        """With SetKey off and a high seg_scale, the recorded argmax grids
        blow up exactly as one-block-per-segment implies."""
        from repro import GpuDevice, TITAN_X_PASCAL

        ds = covtype_small
        d_on = GpuDevice(TITAN_X_PASCAL, seg_scale=1000.0)
        GPUGBDTTrainer(GBDTParams(n_trees=1, max_depth=3), d_on).fit(ds.X, ds.y)
        d_off = GpuDevice(TITAN_X_PASCAL, seg_scale=1000.0)
        GPUGBDTTrainer(
            GBDTParams(n_trees=1, max_depth=3, use_custom_setkey=False), d_off
        ).fit(ds.X, ds.y)

        def max_blocks(dev):
            return max(
                k.blocks for k in dev.ledger.kernels if k.name == "seg_reduce_best_split"
            )

        assert max_blocks(d_off) > 100 * max_blocks(d_on) / 100  # grids exist
        assert max_blocks(d_off) > max_blocks(d_on)
        assert d_off.elapsed_seconds() > d_on.elapsed_seconds()
