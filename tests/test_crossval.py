"""Tests for k-fold cross-validation."""

import numpy as np
import pytest

from repro import GBDTParams
from repro.ext.crossval import CVResult, cross_validate, kfold_indices


class TestKFoldIndices:
    def test_partition_of_rows(self):
        folds = kfold_indices(23, 4, seed=1)
        assert len(folds) == 4
        combined = np.sort(np.concatenate(folds))
        assert np.array_equal(combined, np.arange(23))

    def test_balanced_sizes(self):
        folds = kfold_indices(22, 4)
        sizes = sorted(f.size for f in folds)
        assert sizes[-1] - sizes[0] <= 1

    def test_deterministic(self):
        a = kfold_indices(50, 5, seed=3)
        b = kfold_indices(50, 5, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_seed_changes_assignment(self):
        a = kfold_indices(50, 5, seed=3)
        b = kfold_indices(50, 5, seed=4)
        assert any(not np.array_equal(x, y) for x, y in zip(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)
        with pytest.raises(ValueError):
            kfold_indices(3, 5)


class TestCrossValidate:
    def test_basic_run(self, susy_small):
        ds = susy_small
        res = cross_validate(
            ds.X, ds.y, GBDTParams(n_trees=3, max_depth=3), k=3
        )
        assert res.k == 3
        assert res.mean_valid > 0
        assert all(f.n_train + f.n_valid == ds.X.n_rows for f in res.folds)

    def test_train_better_than_valid(self, susy_small):
        """Trees overfit their own fold: mean train metric <= mean valid."""
        ds = susy_small
        res = cross_validate(
            ds.X, ds.y, GBDTParams(n_trees=6, max_depth=4), k=3
        )
        assert res.mean_train <= res.mean_valid + 0.05

    def test_custom_metric(self, susy_small):
        from repro.metrics import error_rate

        ds = susy_small
        res = cross_validate(
            ds.X, ds.y, GBDTParams(n_trees=3, max_depth=3), k=3, metric=error_rate
        )
        assert 0 <= res.mean_valid <= 1

    def test_backend_choice(self, covtype_small):
        ds = covtype_small
        res = cross_validate(
            ds.X, ds.y, GBDTParams(n_trees=2, max_depth=2), k=2, backend="histogram"
        )
        assert res.k == 2

    def test_format(self, susy_small):
        ds = susy_small
        res = cross_validate(ds.X, ds.y, GBDTParams(n_trees=2, max_depth=2), k=2)
        text = res.format()
        assert "mean valid" in text and "fold 0" in text

    def test_y_mismatch(self, susy_small):
        ds = susy_small
        with pytest.raises(ValueError):
            cross_validate(ds.X, ds.y[:5], GBDTParams(n_trees=1))
