"""Streaming trainer: byte-identity, cache-budget guarantees, the 10x demo.

The whole point of :class:`repro.stream.StreamingHistTrainer` is that
out-of-core execution is *invisible* in the trees: any block size, any
cache budget, RLE on or off, GOSS on or off -- the serialized model is
byte-identical to the in-memory :class:`HistogramGBDTTrainer`.  The
differential battery here pins that grid, and the demo test pins the
capacity story: a dataset declared at ~10x modeled device memory OOMs the
in-memory trainer but streams to the identical model with peak resident
host-cache bytes under the budget (and the counters prove blocks really
spilled and came back -- a run that never touched the disk tier would
vacuously pass the peak check).
"""

import numpy as np
import pytest

from repro.approx.histogram_trainer import HistogramGBDTTrainer
from repro.core.params import GBDTParams
from repro.data import make_dataset
from repro.gpusim.device import TITAN_X_PASCAL
from repro.gpusim.kernel import GpuDevice
from repro.gpusim.memory import DeviceOutOfMemory
from repro.obs import MetricsRegistry, use_registry
from repro.pipeline.checkpoint import model_digest
from repro.stream import StreamingHistTrainer


@pytest.fixture(scope="module")
def ds():
    return make_dataset("covtype", run_rows=300, seed=3)


@pytest.fixture(scope="module")
def params():
    return GBDTParams(n_trees=2, max_depth=3, seed=7)


@pytest.fixture(scope="module")
def reference(ds, params):
    return HistogramGBDTTrainer(params).fit(ds.X, ds.y)


class TestByteIdentity:
    @pytest.mark.parametrize(
        "block_rows,budget",
        [(32, 24 << 10), (64, 128 << 10), (150, 256 << 10), (300, 1 << 20)],
    )
    def test_identical_across_block_sizes_and_budgets(
        self, ds, params, reference, block_rows, budget
    ):
        t = StreamingHistTrainer(
            params, block_rows=block_rows, cache_budget_bytes=budget
        )
        model = t.fit(ds.X, ds.y)
        assert model.to_json() == reference.to_json()
        assert t.store_.peak_resident_bytes <= budget

    @pytest.mark.parametrize("use_rle", [True, False])
    def test_identical_with_and_without_rle(self, ds, params, reference, use_rle):
        t = StreamingHistTrainer(
            params, block_rows=100, cache_budget_bytes=1 << 18, use_rle=use_rle
        )
        assert t.fit(ds.X, ds.y).to_json() == reference.to_json()

    def test_identical_with_goss(self, ds):
        p = GBDTParams(
            n_trees=2, max_depth=3, seed=7, goss_a=0.3, goss_b=0.3
        )
        ref = HistogramGBDTTrainer(p).fit(ds.X, ds.y)
        t = StreamingHistTrainer(p, block_rows=75, cache_budget_bytes=1 << 18)
        assert t.fit(ds.X, ds.y).to_json() == ref.to_json()

    def test_identical_with_spills_forced(self, ds, params, reference):
        # tight budget: the run must go through spill + fetch, not just RAM
        reg = MetricsRegistry(max_label_sets=256)
        with use_registry(reg):
            t = StreamingHistTrainer(
                params, block_rows=32, cache_budget_bytes=24 << 10
            )
            model = t.fit(ds.X, ds.y)
        assert model.to_json() == reference.to_json()
        assert reg.get("blocks_spilled_total").value > 0
        assert reg.get("blocks_fetched_total").value > 0

    def test_warm_start_identical(self, ds, params, reference):
        base = HistogramGBDTTrainer(params).fit(ds.X, ds.y)
        ref2 = HistogramGBDTTrainer(params).fit(ds.X, ds.y, init_model=base)
        t = StreamingHistTrainer(params, block_rows=75, cache_budget_bytes=1 << 18)
        got = t.fit(ds.X, ds.y, init_model=base)
        assert got.to_json() == ref2.to_json()

    def test_digest_matches_reference(self, ds, params, reference):
        t = StreamingHistTrainer(params, block_rows=64, cache_budget_bytes=1 << 18)
        assert model_digest(t.fit(ds.X, ds.y)) == model_digest(reference)


class TestGuards:
    def test_lossguide_rejected(self):
        with pytest.raises(ValueError, match="depthwise"):
            StreamingHistTrainer(GBDTParams(), grow_policy="lossguide")

    def test_bad_block_rows_rejected(self):
        with pytest.raises(ValueError, match="block_rows"):
            StreamingHistTrainer(GBDTParams(), block_rows=0)

    def test_undersized_budget_raises_clearly(self, ds, params):
        with pytest.raises(RuntimeError, match="pinned working set"):
            StreamingHistTrainer(
                params, block_rows=150, cache_budget_bytes=4096
            ).fit(ds.X, ds.y)

    def test_spill_dir_cleaned_up_when_temporary(self, ds, params, tmp_path):
        t = StreamingHistTrainer(params, block_rows=75, cache_budget_bytes=1 << 18)
        t.fit(ds.X, ds.y)
        # explicit spill dirs are kept for post-mortems
        t2 = StreamingHistTrainer(
            params,
            block_rows=32,
            cache_budget_bytes=24 << 10,
            spill_dir=tmp_path,
        )
        t2.fit(ds.X, ds.y)
        assert list(tmp_path.glob("block-*.blk"))


class TestTenXDemo:
    """The capacity story of docs/outofcore.md, pinned as a test."""

    OVERSUB = 10.0

    def _scale(self, X):
        return self.OVERSUB * TITAN_X_PASCAL.global_mem_bytes / (X.nnz * 8)

    def test_inmemory_ooms_at_ten_x(self, ds, params):
        device = GpuDevice(work_scale=self._scale(ds.X))
        with pytest.raises(DeviceOutOfMemory, match="quantized_entries"):
            HistogramGBDTTrainer(params, device).fit(ds.X, ds.y)

    def test_streaming_trains_ten_x_within_budget(self, ds, params, reference):
        budget = 16 << 10
        device = GpuDevice(work_scale=self._scale(ds.X))
        reg = MetricsRegistry(max_label_sets=256)
        with use_registry(reg):
            t = StreamingHistTrainer(
                params,
                device,
                block_rows=12,
                cache_budget_bytes=budget,
            )
            model = t.fit(ds.X, ds.y)
        # identical trees (work scale only extrapolates the cost ledger)
        assert model.to_json() == reference.to_json()
        # the budget held, and not vacuously: blocks spilled and came back
        assert t.store_.peak_resident_bytes <= budget
        assert reg.get("blocks_spilled_total").value > 0
        assert reg.get("blocks_fetched_total").value > 0
        # modeled disk traffic exists and lives in the stream_io phase
        assert device.ledger.disk_bytes > 0
        from repro.stream.prefetch import modeled_overlap

        times = modeled_overlap(device)
        assert times["modeled_io_s"] > 0
        assert times["modeled_compute_s"] > 0

    def test_demo_entrypoint_quick(self):
        from repro.stream.demo import run_stream_demo

        result = run_stream_demo(quick=True)
        assert result.matches_inmem
        assert result.digest == result.inmem_digest
        assert result.peak_resident_bytes <= result.budget_bytes
        assert result.counters["blocks_spilled_total"] > 0
        assert "quantized_entries" in result.oom_message
        assert f"STREAM_DIGEST {result.digest}" in result.text
