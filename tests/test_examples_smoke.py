"""Smoke tests: the example scripts must run end-to-end.

Each example is executed in-process with a reduced-scale monkeypatched
dataset factory where needed; the two fastest run as-is via subprocess to
also validate their shebang/imports in a clean interpreter.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_script(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=str(EXAMPLES.parent),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.parametrize(
    "script,expect",
    [
        ("quickstart.py", "trees identical to the CPU reference: True"),
        ("malware_realtime.py", "meets SLO"),
    ],
)
def test_fast_examples_run(script, expect):
    out = run_script(script)
    assert expect in out


def test_example_scripts_all_importable():
    """Every example compiles (syntax + top-level imports resolve)."""
    import importlib.util

    for path in sorted(EXAMPLES.glob("*.py")):
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        # compile only -- main() must not run on import
        code = path.read_text(encoding="utf-8")
        compile(code, str(path), "exec")
        assert 'if __name__ == "__main__":' in code, path.name


def test_example_inventory_matches_readme():
    """README's example table lists every script that exists."""
    readme = (EXAMPLES.parent / "README.md").read_text(encoding="utf-8")
    for path in sorted(EXAMPLES.glob("*.py")):
        assert path.name in readme, f"{path.name} missing from README"
