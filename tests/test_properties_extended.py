"""Extended hypothesis property tests across orchestration variants:
multi-GPU, out-of-core, sampling and histogram trainers must all agree
with their references under randomized problems."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GBDTParams, GPUGBDTTrainer, models_equal
from repro.approx import HistogramGBDTTrainer
from repro.ext.multigpu import MultiGpuGBDTTrainer
from repro.ext.outofcore import OutOfCoreGBDTTrainer
from tests.conftest import random_csr

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def problem(draw):
    seed = draw(st.integers(0, 5_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(16, 50))
    d = draw(st.integers(2, 6))
    X = random_csr(rng, n, d, density=draw(st.floats(0.4, 1.0)),
                   levels=draw(st.sampled_from([0, 3, 5])))
    y = rng.normal(size=n)
    return X, y


@given(problem(), st.integers(1, 4))
@SETTINGS
def test_multigpu_identity_property(pb, k):
    X, y = pb
    p = GBDTParams(n_trees=2, max_depth=3)
    single = GPUGBDTTrainer(p).fit(X, y)
    multi = MultiGpuGBDTTrainer(p, n_devices=k).fit(X, y)
    assert models_equal(multi, single)


@given(problem(), st.integers(1, 5))
@SETTINGS
def test_outofcore_identity_property(pb, cols_per_group):
    X, y = pb
    p = GBDTParams(n_trees=2, max_depth=3)
    single = GPUGBDTTrainer(p).fit(X, y)
    per_col = int(np.diff(X.to_csc().indptr).max()) * 8
    ooc = OutOfCoreGBDTTrainer(
        p, group_budget_bytes=per_col * cols_per_group + 1
    )
    assert models_equal(ooc.fit(X, y), single)


@given(problem(), st.floats(0.4, 1.0), st.floats(0.4, 1.0), st.integers(0, 99))
@SETTINGS
def test_sampling_identity_property(pb, subsample, colsample, seed):
    from repro.cpu.exact_greedy import ReferenceTrainer

    X, y = pb
    p = GBDTParams(
        n_trees=2, max_depth=3, subsample=subsample,
        colsample_bytree=colsample, seed=seed,
    )
    a = GPUGBDTTrainer(p).fit(X, y)
    b = ReferenceTrainer(p).fit(X, y)
    assert models_equal(a, b)


@given(problem())
@SETTINGS
def test_histogram_matches_exact_on_quantized_property(pb):
    """When bins cover every distinct value, histogram == exact partitions."""
    X, y = pb
    p = GBDTParams(n_trees=2, max_depth=3)
    exact = GPUGBDTTrainer(p).fit(X, y)
    hist = HistogramGBDTTrainer(p, max_bins=1024).fit(X, y)
    assert np.allclose(exact.predict(X), hist.predict(X), atol=1e-9)
    for a, b in zip(exact.trees, hist.trees):
        assert a.attr == b.attr
        assert a.n_instances == b.n_instances


@given(problem())
@SETTINGS
def test_histogram_instance_conservation_property(pb):
    X, y = pb
    model = HistogramGBDTTrainer(GBDTParams(n_trees=2, max_depth=4), max_bins=8).fit(X, y)
    for t in model.trees:
        for nid in range(t.n_nodes):
            if not t.is_leaf(nid):
                assert (
                    t.n_instances[nid]
                    == t.n_instances[t.left[nid]] + t.n_instances[t.right[nid]]
                )
