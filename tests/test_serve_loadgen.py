"""Load-generator tests: determinism, conservation, scaling, run-store."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer
from repro.data.datasets import make_dataset
from repro.obs.runstore import RunStore, flatten_metrics, metric_direction
from repro.serve import BatchPolicy, ModelRegistry
from repro.serve.cluster import (
    AdmissionPolicy,
    FrontDoor,
    LoadSpec,
    ServiceModel,
    run_load,
)


@pytest.fixture(scope="module")
def served_model():
    ds = make_dataset("susy", run_rows=250, seed=12)
    model = GPUGBDTTrainer(GBDTParams(n_trees=4, max_depth=3)).fit(ds.X, ds.y)
    return ds.X.to_dense().values, model


def _door(model, X, n_replicas):
    """A fresh front door sized so one replica saturates under the storm."""
    registry = ModelRegistry()
    registry.publish(model)
    return FrontDoor(
        registry,
        n_replicas,
        policy=BatchPolicy(max_batch=8, max_wait=0.002, max_queue=32),
        admission=AdmissionPolicy(max_pending=24 * n_replicas, overload="degrade"),
        router="least-loaded",
        service=ServiceModel(base_s=0.002, per_row_s=0.0001),
        warm_rows=X[:4],
    )


STORM = LoadSpec(
    n_clients=48,
    duration_s=0.3,
    arrival="bursty",
    mean_gap_s=0.003,
    burst_factor=6.0,
    burst_period_s=0.1,
    burst_duty=0.4,
    slow_client_frac=0.125,
    slow_client_delay_s=0.01,
    slo_ms=25.0,
    seed=7,
)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="arrival"):
            LoadSpec(arrival="uniform")
        with pytest.raises(ValueError, match="positive"):
            LoadSpec(n_clients=0)
        with pytest.raises(ValueError, match="slow_client_frac"):
            LoadSpec(slow_client_frac=1.5)


class TestRunLoad:
    def test_same_seed_same_payload(self, served_model):
        """Bit-reproducible: two runs of the same spec against fresh but
        identically-configured clusters produce identical payloads."""
        X, model = served_model
        a = run_load(_door(model, X, 2), X, STORM)
        b = run_load(_door(model, X, 2), X, STORM)
        assert a.payload() == b.payload()
        assert a.replicas == b.replicas  # includes the version digest

    def test_seed_actually_matters(self, served_model):
        X, model = served_model
        a = run_load(_door(model, X, 2), X, STORM)
        c = run_load(
            _door(model, X, 2),
            X,
            LoadSpec(**{**STORM.__dict__, "seed": 8}),
        )
        assert a.payload() != c.payload()

    def test_conservation_no_request_lost(self, served_model):
        """Every offered request is accounted for: completed + rejected ==
        offered, and degraded responses are a subset of completed."""
        X, model = served_model
        report = run_load(_door(model, X, 1), X, STORM)
        assert report.offered > 0
        assert report.completed + report.rejected == report.offered
        assert 0 <= report.degraded <= report.completed
        assert report.within_slo <= report.completed - report.degraded
        served = sum(r["served"] for r in report.replicas) + sum(
            r["shed"] for r in report.replicas
        )
        assert served == report.completed

    def test_cluster_beats_single_at_same_offered_load(self, served_model):
        """The acceptance comparison, at test scale: same spec, same seed,
        4 replicas sustain strictly higher goodput than 1."""
        X, model = served_model
        single = run_load(_door(model, X, 1), X, STORM)
        cluster = run_load(_door(model, X, 4), X, STORM)
        # the single replica is genuinely saturated...
        assert single.degrade_rate > 0.0 or single.reject_rate > 0.0
        # ...and horizontal scale pays
        assert cluster.goodput_qps > single.goodput_qps
        assert cluster.p99_ms > 0.0 and single.p99_ms > 0.0

    def test_slow_clients_self_throttle(self, served_model):
        """Closed loop: slowing every client's consume path lowers offered
        load instead of growing an unbounded queue."""
        X, model = served_model
        fast = run_load(_door(model, X, 2), X, STORM)
        slow = run_load(
            _door(model, X, 2),
            X,
            LoadSpec(
                **{
                    **STORM.__dict__,
                    "slow_client_frac": 1.0,
                    "slow_client_delay_s": 0.05,
                }
            ),
        )
        assert slow.offered < fast.offered


class TestRunStoreRoundTrip:
    def test_payload_flattens_with_stable_keys(self, served_model):
        X, model = served_model
        report = run_load(_door(model, X, 2), X, STORM)
        flat = flatten_metrics(report.payload()["metrics"])
        assert "goodput_qps" in flat and "p99_ms" in flat
        # replica rows are keyed by name, not list position
        assert "replicas[name=replica0].utilization" in flat
        assert "replicas[name=replica1].served" in flat
        # gate direction: qps up is good, latency up is bad
        assert metric_direction("goodput_qps") == "higher"
        assert metric_direction("p99_ms") == "lower"

    def test_submit_and_gate(self, served_model, tmp_path):
        """BENCH_serving_cluster-shaped metrics round-trip through the run
        store: submit -> gate skips without history -> gate passes with it."""
        X, model = served_model
        report = run_load(_door(model, X, 2), X, STORM)
        metrics = report.payload()["metrics"]
        ticks = iter(range(1, 10))
        store = RunStore(
            tmp_path / "runs",
            clock=lambda: float(next(ticks)),
            commit_resolver=lambda: "deadbeefca",
        )
        rec = store.submit("serving_cluster", metrics, note="storm")
        assert rec.flat_metrics()["goodput_qps"] == pytest.approx(
            report.goodput_qps
        )
        gate = store.gate("serving_cluster")
        assert gate.ok and gate.skipped  # not enough history yet
        store.submit("serving_cluster", metrics)
        store.submit("serving_cluster", metrics)
        gate = store.gate("serving_cluster")
        assert gate.ok and not gate.skipped
        assert not gate.regressions

    def test_gate_flags_goodput_regression(self, served_model, tmp_path):
        X, model = served_model
        report = run_load(_door(model, X, 2), X, STORM)
        metrics = report.payload()["metrics"]
        ticks = iter(range(1, 10))
        store = RunStore(
            tmp_path / "runs",
            clock=lambda: float(next(ticks)),
            commit_resolver=lambda: "deadbeefca",
        )
        for _ in range(3):
            store.submit("serving_cluster", metrics)
        worse = dict(metrics)
        worse["goodput_qps"] = metrics["goodput_qps"] * 0.5
        worse["p99_ms"] = metrics["p99_ms"] * 3.0
        store.submit("serving_cluster", worse)
        gate = store.gate("serving_cluster")
        assert not gate.ok
        regressed = {f.key for f in gate.regressions}
        assert "goodput_qps" in regressed and "p99_ms" in regressed
