"""Tests for repro.gpusim.kernel: Work, launches, transfers, scaling."""

import pytest

from repro.gpusim import GpuDevice, TITAN_X_PASCAL, Work
from repro.gpusim.kernel import KernelLaunch, Transfer


class TestWork:
    def test_totals(self):
        w = Work(elements=100, flops_per_element=2.0, coalesced_bytes=800, irregular_bytes=200)
        assert w.total_flops == 200
        assert w.total_bytes == 1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Work(elements=-1)


class TestLaunchRecording:
    def test_launch_appends_to_ledger(self):
        d = GpuDevice(TITAN_X_PASCAL)
        d.launch("k", elements=1000, coalesced_bytes=8000)
        assert len(d.ledger.kernels) == 1
        assert d.ledger.kernels[0].name == "k"

    def test_default_grid_from_elements(self):
        d = GpuDevice(TITAN_X_PASCAL)
        k = d.launch("k", elements=1000, threads_per_block=256)
        assert k.blocks == 4  # ceil(1000/256)

    def test_work_scale_multiplies_elements_and_bytes(self):
        d = GpuDevice(TITAN_X_PASCAL, work_scale=10.0)
        k = d.launch("k", elements=100, coalesced_bytes=800, irregular_bytes=80)
        assert k.work.elements == 1000
        assert k.work.coalesced_bytes == 8000
        assert k.work.irregular_bytes == 800

    def test_scale_false_bypasses_work_scale(self):
        d = GpuDevice(TITAN_X_PASCAL, work_scale=10.0)
        k = d.launch("k", elements=100, scale=False)
        assert k.work.elements == 100

    def test_grid_follows_scaled_elements(self):
        d = GpuDevice(TITAN_X_PASCAL, work_scale=10.0)
        k = d.launch("k", elements=100, threads_per_block=256)
        assert k.blocks == 4  # ceil(1000/256)

    def test_explicit_blocks_respected(self):
        d = GpuDevice(TITAN_X_PASCAL)
        k = d.launch("k", elements=10, blocks=77)
        assert k.blocks == 77

    def test_blocks_scale_uses_seg_scale(self):
        d = GpuDevice(TITAN_X_PASCAL, seg_scale=5.0)
        k = d.launch("k", elements=10, blocks=100, blocks_scale=True)
        assert k.blocks == 500

    def test_launches_counted(self):
        d = GpuDevice(TITAN_X_PASCAL)
        d.launch("k", elements=10, launches=3)
        d.launch("k2", elements=10)
        assert d.ledger.n_launches == 4

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            GpuDevice(TITAN_X_PASCAL, work_scale=0)


class TestPhases:
    def test_phase_tagging(self):
        d = GpuDevice(TITAN_X_PASCAL)
        with d.phase("find_split"):
            d.launch("a", elements=1)
            with d.phase("inner"):
                d.launch("b", elements=1)
        d.launch("c", elements=1)
        phases = [k.phase for k in d.ledger.kernels]
        assert phases == ["find_split", "inner", "unphased"]

    def test_ledger_phase_order(self):
        d = GpuDevice(TITAN_X_PASCAL)
        with d.phase("z"):
            d.launch("a", elements=1)
        with d.phase("a"):
            d.launch("b", elements=1)
        assert d.ledger.phases() == ["z", "a"]


class TestTransfers:
    def test_transfer_scaled(self):
        d = GpuDevice(TITAN_X_PASCAL, work_scale=4.0)
        t = d.transfer("up", 100)
        assert t.nbytes == 400
        assert t.direction == "h2d"

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            Transfer(name="x", nbytes=1, direction="sideways", phase="p")

    def test_transfer_bytes_aggregated(self):
        d = GpuDevice(TITAN_X_PASCAL)
        d.transfer("a", 100)
        d.transfer("b", 50, direction="d2h")
        assert d.ledger.transfer_bytes == 150


class TestReset:
    def test_reset_clears_everything(self):
        d = GpuDevice(TITAN_X_PASCAL)
        d.launch("k", elements=10)
        d.memory.alloc("buf", 1024)
        d.reset()
        assert len(d.ledger.kernels) == 0
        assert d.memory.in_use_bytes == 0

    def test_elapsed_positive_after_launch(self):
        d = GpuDevice(TITAN_X_PASCAL)
        d.launch("k", elements=1_000_000, coalesced_bytes=8_000_000)
        assert d.elapsed_seconds() > 0


class TestKernelLaunchValidation:
    def test_zero_blocks_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(
                name="k", work=Work(elements=1), blocks=0,
                threads_per_block=1, launches=1, phase="p",
            )
