"""Tests for the sorted attribute lists (the Section II-A example)."""

import numpy as np
import pytest

from repro.data import build_sorted_columns, table1_example
from repro.gpusim import GpuDevice, TITAN_X_PASCAL


@pytest.fixture
def table1_sorted():
    X, _ = table1_example()
    return build_sorted_columns(X.to_csc())


class TestPaperExample:
    def test_a1_sorted_descending(self, table1_sorted):
        """Paper: a1 -> (x2: 1.2); (x4: 1.2); (x3: 0.5)."""
        vals, inst = table1_sorted.column(0)
        assert list(vals) == [1.2, 1.2, 0.5]
        assert list(inst) == [1, 3, 2]  # 0-based x2, x4, x3

    def test_a2_single_entry(self, table1_sorted):
        """Paper: a2 -> (x3: 1.0)."""
        vals, inst = table1_sorted.column(1)
        assert list(vals) == [1.0]
        assert list(inst) == [2]

    def test_a3_ordering(self, table1_sorted):
        """Paper: a3 -> (x4: 2.0); (x2: 0.1); (x1: 0.1) -- note the paper
        lists x2 before x1 among the tied 0.1 values; our stable rule orders
        ties by ascending instance id (x1 then x2), which is equally valid
        and deterministic."""
        vals, inst = table1_sorted.column(2)
        assert list(vals) == [2.0, 0.1, 0.1]
        assert inst[0] == 3
        assert set(inst[1:]) == {0, 1}
        assert list(inst[1:]) == sorted(inst[1:])  # stable tie order

    def test_a4(self, table1_sorted):
        vals, inst = table1_sorted.column(3)
        assert list(vals) == [0.6]
        assert list(inst) == [1]

    def test_missing_counts(self, table1_sorted):
        """x1 misses a1; only x3 has a2; etc."""
        assert table1_sorted.missing_count(0) == 1
        assert table1_sorted.missing_count(1) == 3
        assert table1_sorted.missing_count(2) == 1
        assert table1_sorted.missing_count(3) == 3

    def test_check_sorted(self, table1_sorted):
        assert table1_sorted.check_sorted()

    def test_nnz(self, table1_sorted):
        assert table1_sorted.nnz == 8


class TestDeviceBuild:
    def test_device_build_matches_host_build(self):
        X, _ = table1_example()
        csc = X.to_csc()
        host = build_sorted_columns(csc)
        d = GpuDevice(TITAN_X_PASCAL)
        on_dev = build_sorted_columns(csc, d)
        assert np.array_equal(host.values, on_dev.values)
        assert np.array_equal(host.inst, on_dev.inst)
        assert len(d.ledger.kernels) == 1  # the radix sort was charged

    def test_device_footprint(self, table1_sorted):
        assert table1_sorted.nbytes_device == 8 * 8 + 5 * 8


class TestValidation:
    def test_bad_offsets_length(self):
        from repro.data.sorted_columns import SortedColumns

        with pytest.raises(ValueError):
            SortedColumns(
                col_offsets=np.array([0, 1]), values=np.array([1.0]),
                inst=np.array([0]), n_rows=1, n_cols=2,
            )

    def test_misaligned_inst(self):
        from repro.data.sorted_columns import SortedColumns

        with pytest.raises(ValueError):
            SortedColumns(
                col_offsets=np.array([0, 2]), values=np.array([1.0, 2.0]),
                inst=np.array([0]), n_rows=2, n_cols=1,
            )

    def test_check_sorted_detects_violation(self):
        from repro.data.sorted_columns import SortedColumns

        sc = SortedColumns(
            col_offsets=np.array([0, 2]), values=np.array([1.0, 2.0]),
            inst=np.array([0, 1]), n_rows=2, n_cols=1,
        )
        assert not sc.check_sorted()


def test_random_build_is_descending_and_complete():
    rng = np.random.default_rng(3)
    from tests.conftest import random_csr

    X = random_csr(rng, 50, 7, density=0.4)
    sc = build_sorted_columns(X.to_csc())
    assert sc.check_sorted()
    assert sc.nnz == X.nnz
    # every (inst, value) pair of the original matrix appears exactly once
    for j in range(7):
        vals, inst = sc.column(j)
        pairs = sorted(zip(inst.tolist(), vals.tolist()))
        expected = sorted(
            (i, X.get(i, j)) for i in range(50) if X.get(i, j) is not None
        )
        assert pairs == expected
