"""Tests for the LibSVM reader/writer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import dumps_libsvm, loads_libsvm, table1_example
from repro.data.libsvm import dump_libsvm, load_libsvm


SAMPLE = """\
1 1:1.5 3:2.0
-1 2:0.5
0.5
"""


class TestParse:
    def test_basic(self):
        X, y = loads_libsvm(SAMPLE)
        assert X.shape == (3, 3)
        assert list(y) == [1.0, -1.0, 0.5]
        assert X.get(0, 0) == 1.5  # 1-based index 1 -> column 0
        assert X.get(0, 2) == 2.0
        assert X.get(1, 1) == 0.5

    def test_empty_row_allowed(self):
        X, y = loads_libsvm("2.5\n")
        assert X.n_rows == 1 and X.nnz == 0

    def test_comments_and_blank_lines(self):
        X, y = loads_libsvm("# header\n1 1:2.0  # trailing\n\n")
        assert X.n_rows == 1
        assert X.get(0, 0) == 2.0

    def test_zero_based(self):
        X, _ = loads_libsvm("1 0:3.0\n", zero_based=True)
        assert X.get(0, 0) == 3.0

    def test_unsorted_features_sorted(self):
        X, _ = loads_libsvm("1 3:3.0 1:1.0\n")
        cols, vals = X.row(0)
        assert list(cols) == [0, 2]

    def test_bad_label(self):
        with pytest.raises(ValueError, match="bad label"):
            loads_libsvm("abc 1:1\n")

    def test_bad_token(self):
        with pytest.raises(ValueError, match="bad feature token"):
            loads_libsvm("1 nonsense\n")

    def test_index_below_base(self):
        with pytest.raises(ValueError, match="below"):
            loads_libsvm("1 0:1.0\n")  # 1-based file with index 0

    def test_explicit_ncols(self):
        X, _ = loads_libsvm("1 1:1.0\n", n_cols=10)
        assert X.n_cols == 10

    def test_ncols_too_small(self):
        with pytest.raises(ValueError, match="n_cols"):
            loads_libsvm("1 5:1.0\n", n_cols=2)


class TestDump:
    def test_roundtrip_table1(self):
        X, y = table1_example()
        X2, y2 = loads_libsvm(dumps_libsvm(X, y), n_cols=4)
        assert X2 == X
        assert np.array_equal(y, y2)

    def test_zero_based_roundtrip(self):
        X, y = table1_example()
        X2, _ = loads_libsvm(dumps_libsvm(X, y, zero_based=True), n_cols=4, zero_based=True)
        assert X2 == X

    def test_label_count_mismatch(self):
        X, y = table1_example()
        with pytest.raises(ValueError, match="label count"):
            dumps_libsvm(X, y[:2])

    def test_empty_matrix(self):
        from repro.data import CSRMatrix

        X = CSRMatrix(np.array([0]), np.array([], dtype=np.int64), np.array([]), n_cols=0)
        assert dumps_libsvm(X, np.array([])) == ""


class TestFileIO:
    def test_file_roundtrip(self, tmp_path):
        X, y = table1_example()
        path = tmp_path / "data.libsvm"
        dump_libsvm(path, X, y)
        X2, y2 = load_libsvm(path, n_cols=4)
        assert X2 == X
        assert np.array_equal(y, y2)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_libsvm_roundtrip_property(data):
    """dump . load == identity for arbitrary sparse matrices and labels."""
    n = data.draw(st.integers(0, 8))
    d = data.draw(st.integers(1, 6))
    rows = []
    for _ in range(n):
        cols = sorted(data.draw(st.sets(st.integers(0, d - 1), max_size=d)))
        rows.append(
            [(c, data.draw(st.floats(-100, 100, allow_nan=False, width=32)) or 1.0)
             for c in cols]
        )
    from repro.data import CSRMatrix

    X = CSRMatrix.from_rows(rows, n_cols=d)
    y = np.array([data.draw(st.floats(-10, 10, allow_nan=False, width=32)) for _ in range(n)])
    X2, y2 = loads_libsvm(dumps_libsvm(X, y), n_cols=d)
    assert X2 == X
    assert np.allclose(y, y2)
