"""Prefetch pipeline: ordering, pinning discipline, error propagation.

The pipeline is the only threaded component of the streaming trainer, so
these tests pin the properties the trainer's determinism and the store's
budget rest on: blocks arrive in exactly the requested order regardless of
thread timing, every pin taken by the worker is released (even when the
consumer abandons the loop or the worker dies), and a worker-side failure
surfaces as an exception in the consumer instead of a hang.
"""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.stream.blockstore import BlockStore, ColumnBlock
from repro.stream.prefetch import PrefetchPipeline, modeled_overlap


def _block(block_id, n=40):
    rng = np.random.default_rng(block_id)
    gbin = np.sort(rng.integers(0, 8, n)).astype(np.int64)
    inst = np.arange(n, dtype=np.int64)
    order = np.lexsort((inst, gbin))
    return ColumnBlock.build(block_id, 0, n, inst[order], gbin[order])


@pytest.fixture
def store(tmp_path):
    s = BlockStore(tmp_path, 1 << 20)
    for i in range(6):
        s.put(_block(i))
    return s


def test_blocks_arrive_in_requested_order(store):
    ids = [4, 0, 2, 5, 1, 3]
    seen = [b.block_id for b in PrefetchPipeline(store, ids, depth=3)]
    assert seen == ids


def test_repeated_iteration_same_order(store):
    pipe = PrefetchPipeline(store, [0, 1, 2], depth=2)
    assert [b.block_id for b in pipe] == [0, 1, 2]
    assert [b.block_id for b in pipe] == [0, 1, 2]


def test_all_pins_released_after_full_run(store):
    for _ in PrefetchPipeline(store, range(6), depth=2):
        pass
    assert store._pins == {}


def test_early_abandonment_releases_pins(store):
    for b in PrefetchPipeline(store, range(6), depth=2):
        if b.block_id == 1:
            break
    assert store._pins == {}


def test_metrics_recorded(store):
    reg = MetricsRegistry(max_label_sets=64)
    with use_registry(reg):
        list(PrefetchPipeline(store, range(6), depth=4))
    hits = reg.get("prefetch_hits_total")
    waits = reg.get("io_wait_seconds_total")
    assert hits is not None and waits is not None
    assert hits.value + 1 >= 0  # counters exist; split depends on timing
    assert waits.value >= 0.0


def test_worker_error_propagates_to_consumer(store):
    with pytest.raises(KeyError):
        # 99 is unknown: the worker thread's failure must surface here,
        # not hang the consumer forever
        list(PrefetchPipeline(store, [0, 1, 99, 2], depth=2))
    assert store._pins == {}


def test_over_budget_pin_set_raises_in_consumer(tmp_path):
    import time

    blocks = [_block(i, n=200) for i in range(8)]
    store = BlockStore(tmp_path, blocks[0].nbytes * 2 + 8)
    for b in blocks:
        store.put(b)
    with pytest.raises(RuntimeError, match="pinned working set"):
        # a slow consumer lets the depth-4 worker pin more blocks than the
        # budget holds; the worker-side error must surface here, not hang
        for _ in PrefetchPipeline(store, range(8), depth=4):
            time.sleep(0.3)
    assert store._pins == {}


def test_depth_validation(store):
    with pytest.raises(ValueError):
        PrefetchPipeline(store, [0], depth=0)


def test_modeled_overlap_splits_io_from_compute():
    from repro.gpusim.kernel import GpuDevice

    device = GpuDevice()
    with device.phase("find_split"):
        device.launch("k", elements=1e9, flops_per_element=10.0)
    device.disk_transfer("fetch_block", 1e9, "read", phase="stream_io")
    times = modeled_overlap(device)
    assert times["modeled_io_s"] > 0
    assert times["modeled_compute_s"] > 0
    assert times["modeled_serial_s"] == pytest.approx(
        times["modeled_io_s"] + times["modeled_compute_s"]
    )
    assert times["modeled_overlap_s"] == pytest.approx(
        max(times["modeled_io_s"], times["modeled_compute_s"])
    )
    assert times["overlap_speedup"] >= 1.0
