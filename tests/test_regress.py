"""Tests for the regression-tracking (save/compare) harness."""

import json

import numpy as np
import pytest

from repro.bench.experiments import SeriesResult
from repro.bench.regress import Drift, compare_results, load_results, save_results, to_payload


def series(vals):
    return SeriesResult(
        x_label="x", xs=[1, 2, 3], series={"s": list(vals)}, title="t"
    )


class TestPayload:
    def test_series_result_serializes(self):
        p = to_payload(series([1.0, 2.0, 3.0]))
        assert p["series"]["s"] == [1.0, 2.0, 3.0]
        assert p["xs"] == [1, 2, 3]

    def test_numpy_values_converted(self):
        p = to_payload(series(np.array([1.5, 2.5, 3.5])))
        assert p["series"]["s"] == [1.5, 2.5, 3.5]
        assert all(isinstance(v, float) for v in p["series"]["s"])

    def test_non_serializable_attributes_dropped(self):
        from repro.bench.experiments import Table2Result

        rows = [{"dataset": "a", "ours": 1.0, "model_obj": object()}]
        p = to_payload(Table2Result(rows=rows))
        assert p["rows"][0] == {"dataset": "a", "ours": 1.0}

    def test_table2_quick_payload_is_json(self):
        from repro.bench.experiments import run_table2

        res = run_table2(quick=True, names=("covtype",))
        text = json.dumps(to_payload(res))
        assert "covtype" in text

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_payload(42)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        save_results(path, {"exp": series([1.0, 2.0, 3.0])}, meta={"note": "x"})
        doc = load_results(path)
        assert doc["meta"]["note"] == "x"
        assert "version" in doc["meta"]
        assert doc["experiments"]["exp"]["series"]["s"] == [1.0, 2.0, 3.0]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError):
            load_results(path)


class TestCompare:
    def _docs(self, old_vals, new_vals):
        return (
            {"experiments": {"e": to_payload(series(old_vals))}},
            {"experiments": {"e": to_payload(series(new_vals))}},
        )

    def test_no_drift_when_identical(self):
        old, new = self._docs([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert compare_results(old, new) == []

    def test_small_drift_within_tolerance(self):
        old, new = self._docs([1.0, 2.0, 3.0], [1.01, 2.0, 3.0])
        assert compare_results(old, new, rtol=0.05) == []

    def test_large_drift_reported_with_path(self):
        old, new = self._docs([1.0, 2.0, 3.0], [2.0, 2.0, 3.0])
        drifts = compare_results(old, new, rtol=0.05)
        assert len(drifts) == 1
        assert drifts[0].path == "e.series.s[0]"
        assert "->" in str(drifts[0])

    def test_missing_keys_ignored(self):
        old = {"experiments": {"e": {"a": 1.0}}}
        new = {"experiments": {"e": {"b": 1.0}}}
        assert compare_results(old, new) == []

    def test_bools_not_treated_as_numbers(self):
        old = {"experiments": {"e": {"flag": True}}}
        new = {"experiments": {"e": {"flag": False}}}
        assert compare_results(old, new) == []

    def test_rel_property(self):
        d = Drift(path="p", old=1.0, new=1.5)
        assert d.rel == pytest.approx(1 / 3)


class TestCliIntegration:
    def test_save_then_compare_clean(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "base.json"
        assert main(["crossover", "--quick", "--save", str(path)]) == 0
        assert main(["crossover", "--quick", "--compare", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no drift" in out

    def test_compare_flags_drift(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "base.json"
        assert main(["crossover", "--quick", "--save", str(path)]) == 0
        doc = json.loads(path.read_text())
        doc["experiments"]["crossover"]["series"]["GPU-GBDT (s)"][0] *= 10
        path.write_text(json.dumps(doc))
        assert main(["crossover", "--quick", "--compare", str(path)]) == 1
        assert "drift" in capsys.readouterr().out


class TestRepoBaseline:
    def test_repo_baseline_loads_if_present(self):
        """The checked-in full-scale baseline (results/baseline.json) must
        stay loadable and structurally sound."""
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "results" / "baseline.json"
        if not path.exists():
            pytest.skip("no baseline saved in this checkout")
        doc = load_results(path)
        assert "table2" in doc["experiments"]
        rows = doc["experiments"]["table2"]["rows"]
        assert len(rows) == 8
        assert all("ours" in r for r in rows)
