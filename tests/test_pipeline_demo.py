"""End-to-end demo tests: fault-injected kill, resume, digest equality."""

import pytest

from repro.ioutil import SimulatedCrash
from repro.pipeline import CheckpointStore, run_pipeline_demo


def test_kill_resume_matches_uninterrupted(tmp_path):
    """Kill during a checkpoint write, resume, and land on the exact same
    final model digest as a run that was never interrupted."""
    killed_dir = tmp_path / "killed"
    clean_dir = tmp_path / "clean"

    with pytest.raises(SimulatedCrash):
        run_pipeline_demo(quick=True, ckpt_dir=killed_dir, kill_at_round=3)

    # the kill left a torn destination file and an orphaned tmp; the valid
    # checkpoints stop at round 2
    store = CheckpointStore(killed_dir)
    assert 3 in store.rounds()  # torn file is present...
    ck = store.latest()
    assert ck.round == 2  # ...but recovery refuses it

    resumed = run_pipeline_demo(quick=True, ckpt_dir=killed_dir, resume=True)
    assert resumed.resumed_from == 2

    clean = run_pipeline_demo(quick=True, ckpt_dir=clean_dir)
    assert clean.resumed_from is None
    assert resumed.base_digest == clean.base_digest
    assert resumed.digest == clean.digest


def test_demo_publishes_and_rolls_back(tmp_path):
    """The stream is built to exercise the whole loop: benign drift gets
    published, the poisoned-label window gets rolled back."""
    result = run_pipeline_demo(quick=True, ckpt_dir=tmp_path)
    s = result.summary
    assert s["publishes"] >= 1
    assert s["rollbacks"] >= 1
    kinds = [e.kind for e in result.events]
    # recovery after the poison passes: the last decision is a publish
    assert kinds[-1] == "publish"
    assert result.modeled_train_seconds > 0
    # base training checkpointed every round
    assert result.checkpoint_rounds == list(range(1, result.base_rounds + 1))
