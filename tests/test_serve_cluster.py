"""Cluster tier tests: routing, admission, lifecycle, rolling deploys."""

import threading

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer
from repro.data.datasets import make_dataset
from repro.serve import BatchPolicy, ModelRegistry, QueueFull
from repro.serve.cluster import (
    AdmissionPolicy,
    ConsistentHashRouter,
    FrontDoor,
    LeastLoadedRouter,
    ReplicaState,
    RoundRobinRouter,
    ServiceModel,
    make_router,
)
from repro.serve.cluster.replica import Replica


@pytest.fixture(scope="module")
def models():
    ds = make_dataset("susy", run_rows=250, seed=12)
    a = GPUGBDTTrainer(GBDTParams(n_trees=4, max_depth=3)).fit(ds.X, ds.y)
    b = GPUGBDTTrainer(GBDTParams(n_trees=4, max_depth=3, learning_rate=0.2)).fit(
        ds.X, ds.y
    )
    return ds, a, b


@pytest.fixture
def cluster(models):
    """3-replica front door on v1, with v2 staged; plus probe rows."""
    ds, model_a, model_b = models
    registry = ModelRegistry()
    va = registry.publish(model_a)
    vb = registry.publish(model_b, activate=False)
    X = ds.X.to_dense().values
    fd = FrontDoor(
        registry,
        3,
        policy=BatchPolicy(max_batch=8, max_wait=0.004, max_queue=64),
        admission=AdmissionPolicy(max_pending=64, overload="degrade"),
        router="round-robin",
        service=ServiceModel(base_s=0.001, per_row_s=0.0001),
        warm_rows=X[:4],
    )
    return fd, registry, va, vb, X


class _Stub:
    def __init__(self, replica_id, depth=0):
        self.replica_id = replica_id
        self.queue_depth = depth


# ------------------------------------------------------------------- routing
class TestRouting:
    def test_round_robin_cycles_in_id_order(self):
        r = RoundRobinRouter()
        stubs = [_Stub(2), _Stub(0), _Stub(1)]
        picks = [r.pick(stubs).replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_shallow_queue_ties_by_id(self):
        r = LeastLoadedRouter()
        assert r.pick([_Stub(0, 5), _Stub(1, 2), _Stub(2, 2)]).replica_id == 1
        assert r.pick([_Stub(0, 3), _Stub(1, 3)]).replica_id == 0

    def test_hash_router_is_sticky_and_stable_under_membership_change(self):
        r = ConsistentHashRouter(vnodes=32)
        stubs = [_Stub(i) for i in range(4)]
        keys = [f"key-{i}".encode() for i in range(200)]
        owners = {k: r.pick(stubs, k).replica_id for k in keys}
        # sticky: same key, same replica
        assert all(r.pick(stubs, k).replica_id == owners[k] for k in keys)
        # removing one replica only remaps the keys it owned
        survivors = [s for s in stubs if s.replica_id != 3]
        moved = sum(
            1
            for k in keys
            if owners[k] != 3 and r.pick(survivors, k).replica_id != owners[k]
        )
        assert moved == 0

    def test_hash_router_keyless_falls_back_to_round_robin(self):
        r = ConsistentHashRouter()
        stubs = [_Stub(0), _Stub(1)]
        assert [r.pick(stubs).replica_id for _ in range(4)] == [0, 1, 0, 1]

    def test_make_router(self):
        assert isinstance(make_router("round-robin"), RoundRobinRouter)
        assert isinstance(make_router("least-loaded"), LeastLoadedRouter)
        assert isinstance(make_router("hash"), ConsistentHashRouter)
        with pytest.raises(ValueError, match="unknown router"):
            make_router("random")

    def test_empty_candidate_set_raises(self):
        for r in (RoundRobinRouter(), LeastLoadedRouter(), ConsistentHashRouter()):
            with pytest.raises(ValueError):
                r.pick([])


# ----------------------------------------------------------------- admission
class TestAdmission:
    def test_concurrent_producers_deterministic_degrade_no_lost_no_dup(
        self, models
    ):
        """Satellite: T producer threads against a full admission queue see
        deterministic degrade decisions and zero lost/duplicated responses."""
        ds, model_a, _ = models
        registry = ModelRegistry()
        registry.publish(model_a)
        X = ds.X.to_dense().values
        max_pending = 16
        fd = FrontDoor(
            registry,
            2,
            policy=BatchPolicy(max_batch=64, max_wait=10.0, max_queue=1024),
            admission=AdmissionPolicy(max_pending=max_pending, overload="degrade"),
            service=ServiceModel(),
            warm_rows=X[:2],
        )
        n_threads, per_thread = 8, 25
        handles = [[] for _ in range(n_threads)]
        barrier = threading.Barrier(n_threads)

        def producer(tid):
            barrier.wait()
            for i in range(per_thread):
                handles[tid].append(fd.submit(X[(tid + i) % len(X)], now=0.0))

        threads = [
            threading.Thread(target=producer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        flat = [h for hs in handles for h in hs]
        total = n_threads * per_thread
        assert len(flat) == total
        degraded = [h for h in flat if h.degraded]
        queued = [h for h in flat if not h.degraded]
        # deterministic under the admission lock: exactly max_pending
        # requests were admitted, every other one degraded -- regardless of
        # thread interleaving
        assert len(queued) == max_pending
        assert len(degraded) == total - max_pending
        assert all(h.done for h in degraded)
        assert fd.degraded == total - max_pending and fd.admitted == max_pending
        # flush the queued remainder: every handle resolves exactly once
        # (PendingPrediction raises on double resolve)
        fd.quiesce(0.0)
        assert all(h.done for h in flat)
        assert all(isinstance(h.result(), float) for h in flat)

    def test_reject_policy_applies_backpressure(self, models):
        ds, model_a, _ = models
        registry = ModelRegistry()
        registry.publish(model_a)
        X = ds.X.to_dense().values
        fd = FrontDoor(
            registry,
            1,
            policy=BatchPolicy(max_batch=64, max_wait=10.0, max_queue=1024),
            admission=AdmissionPolicy(max_pending=4, overload="reject"),
            warm_rows=X[:2],
        )
        for i in range(4):
            fd.submit(X[i], now=0.0)
        with pytest.raises(QueueFull):
            fd.submit(X[4], now=0.0)
        assert fd.rejected == 1 and fd.pending == 4

    def test_no_ready_replica_rejects(self, cluster):
        fd, *_rest, X = cluster
        for r in fd.replicas:
            r.begin_drain(0.0)
        with pytest.raises(QueueFull, match="no READY replica"):
            fd.submit(X[0], now=0.0)
        assert fd.rejected == 1


# ----------------------------------------------------------------- lifecycle
class TestLifecycle:
    def test_warming_replica_takes_no_traffic(self, models):
        ds, model_a, _ = models
        registry = ModelRegistry()
        registry.publish(model_a)
        r = Replica(0, registry)
        assert r.state is ReplicaState.WARMING
        with pytest.raises(RuntimeError, match="not READY"):
            r.submit(np.zeros(ds.X.n_cols), now=0.0)
        out = r.warm_up(ds.X.to_dense().values[:4])
        assert r.state is ReplicaState.READY
        assert np.array_equal(
            out, registry.active().flat.predict(ds.X.to_dense().values[:4])
        )

    def test_drain_then_stop_freezes_serving(self, models):
        """Satellite drill: no request is ever served by a draining replica
        after its drain completes."""
        ds, model_a, _ = models
        registry = ModelRegistry()
        registry.publish(model_a)
        X = ds.X.to_dense().values
        r = Replica(0, registry, policy=BatchPolicy(max_batch=4, max_wait=0.01))
        r.warm_up(X[:2])
        r.submit(X[0], now=0.0)
        r.begin_drain(now=0.001)
        assert r.state is ReplicaState.DRAINING
        with pytest.raises(RuntimeError, match="not READY"):
            r.submit(X[1], now=0.002)  # draining: no new traffic
        # queued work still flushes during the drain
        batch = r.batcher.take()
        r.complete_batch(batch, 0.002, 0.003)
        assert r.served_total == 1
        assert r.is_drained(0.004)
        r.finish_drain(0.004)
        assert r.state is ReplicaState.STOPPED
        # after drain completes, serving anything is a hard error (checked
        # before the batch is even inspected)
        with pytest.raises(RuntimeError, match="after drain completed"):
            r.complete_batch([], 0.005, 0.006)

    def test_pin_requires_drained_replica(self, cluster):
        fd, registry, va, vb, X = cluster
        r = fd.replicas[0]
        with pytest.raises(RuntimeError, match="drain before re-pinning"):
            r.pin(vb)

    def test_finish_drain_refuses_with_pending_work(self, cluster):
        fd, *_rest, X = cluster
        r = fd.replicas[0]
        r.submit(X[0], now=0.0)
        r.begin_drain(0.001)
        with pytest.raises(RuntimeError, match="still has work"):
            r.finish_drain(0.001)


# ------------------------------------------------------------ rolling deploy
class TestRollingDeploy:
    def _pump(self, fd, X, t0, n=40, gap=0.002):
        """Feed requests while advancing simulated time; returns handles."""
        handles = []
        t = t0
        for i in range(n):
            fd.advance(t)
            try:
                handles.append((fd.submit(X[i % len(X)], t), t))
            except QueueFull:
                pass
            t += gap
        return handles, t

    def test_deploy_swaps_all_replicas_and_drops_nothing(self, cluster):
        fd, registry, va, vb, X = cluster
        probes = X[:8]
        expected = registry.get("default", vb).flat.predict(probes)
        handles, t = self._pump(fd, X, 0.0, n=30)
        report = fd.start_deploy(vb, probes, expected, now=t)
        more, t = self._pump(fd, X, t, n=60)
        t_end = fd.quiesce(t)
        assert report.done and not report.failed
        assert sorted(report.swapped) == [0, 1, 2]
        assert registry.active().version == vb
        assert all(r.version == vb for r in fd.replicas)
        assert all(r.state is ReplicaState.READY for r in fd.replicas)
        # zero dropped in-flight requests: every admitted handle resolved
        all_handles = handles + more
        assert all_handles and all(h.done for h, _ in all_handles)
        # every request was served by a single consistent version
        assert {h.version for h, _ in all_handles} <= {va, vb}

    def test_stopped_replicas_never_served_while_stopped(self, cluster):
        """Track every replica's served_total across its STOPPED window (by
        hooking the lifecycle transitions) -- it must not move between
        finish_drain and the re-admitting warm_up."""
        fd, registry, va, vb, X = cluster
        probes = X[:8]
        expected = registry.get("default", vb).flat.predict(probes)
        at_stop, at_warm = {}, {}
        for r in fd.replicas:
            orig_stop, orig_warm = r.finish_drain, r.warm_up

            def stop(now, _r=r, _orig=orig_stop):
                _orig(now)
                at_stop[_r.replica_id] = _r.served_total

            def warm(rows, now=0.0, _r=r, _orig=orig_warm):
                if _r.state is ReplicaState.STOPPED:
                    at_warm[_r.replica_id] = _r.served_total
                return _orig(rows, now)

            r.finish_drain, r.warm_up = stop, warm

        handles, t = self._pump(fd, X, 0.0, n=30)
        fd.start_deploy(vb, probes, expected, now=t)
        _more, t = self._pump(fd, X, t, n=60)
        fd.quiesce(t)
        assert fd.deploy.done and not fd.deploy.failed
        # every replica passed through STOPPED, and served nothing there
        assert sorted(at_stop) == [0, 1, 2] == sorted(at_warm)
        assert at_stop == at_warm

    def test_validation_failure_rolls_back_and_restores_digest(self, cluster):
        """Satellite drill: rollback restores the prior version digest and
        byte-identical served predictions."""
        fd, registry, va, vb, X = cluster
        probes = X[:8]

        def serve(t0):
            hs = [fd.submit(row, t0 + i * 1e-3) for i, row in enumerate(probes)]
            fd.quiesce(t0 + len(probes) * 1e-3)
            return np.array([h.result() for h in hs])

        before = serve(0.0)
        assert np.array_equal(
            before, registry.get("default", va).flat.predict(probes)
        )
        report = fd.start_deploy(
            vb, probes, np.full(len(probes), -1e30), now=1.0
        )
        fd.quiesce(1.0)
        assert report.done and report.failed and report.rolled_back
        assert report.swapped == []
        # prior version digest restored everywhere; active pointer unmoved
        assert registry.active().version == va
        assert all(r.version == va for r in fd.replicas)
        after = serve(2.0)
        assert np.array_equal(before, after)

    def test_concurrent_deploys_refused(self, cluster):
        fd, registry, va, vb, X = cluster
        probes = X[:4]
        expected = registry.get("default", vb).flat.predict(probes)
        fd.start_deploy(vb, probes, expected, now=0.0)
        with pytest.raises(RuntimeError, match="already in progress"):
            fd.start_deploy(vb, probes, expected, now=0.0)

    def test_deploy_merges_per_replica_traces(self, cluster, tmp_path):
        """Per-replica spans merge into one Chrome trace, one pid per
        replica, like the distributed per-rank merge."""
        import json

        from repro.obs import export_merged_chrome_trace

        fd, registry, va, vb, X = cluster
        self._pump(fd, X, 0.0, n=30)
        fd.quiesce(0.2)
        path = tmp_path / "cluster_trace.json"
        n = export_merged_chrome_trace(path, rank_tracers=list(fd.rank_tracers()))
        assert n > 0
        doc = json.loads(path.read_text())
        slice_pids = {e["pid"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert len(slice_pids) == 3  # one pid per replica
