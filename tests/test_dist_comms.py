"""Unit tests for the collective-comms layer (``repro.dist.comms``).

Both backends must produce identical, rank-order-deterministic results for
the five collectives; the simulated backend must additionally charge the
ring-step cost model exactly, and injected faults must surface as
``WorkerFailure`` in the survivors while real bugs re-raise as themselves.
"""

import threading
import time

import numpy as np
import pytest

from repro.dist.comms import (
    FaultPlan,
    LinkSpec,
    WorkerFailure,
    _Rendezvous,
    run_spmd,
)
from repro.gpusim.costmodel import PCIE_LATENCY_S
from repro.gpusim.device import TITAN_X_PASCAL
from repro.gpusim.kernel import GpuDevice
from repro.obs import MetricsRegistry, use_registry

BACKENDS = ("sim", "threaded")
WORLD_SIZES = (1, 2, 3, 5)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("w", WORLD_SIZES)
class TestCollectiveResults:
    def test_allreduce_sum_int64_exact(self, backend, w):
        def fn(coll):
            local = (np.arange(37, dtype=np.int64) + 1) * (coll.rank + 1) ** 3
            return coll.allreduce_sum(local)

        results, _ = run_spmd(w, fn, backend=backend)
        want = (np.arange(37, dtype=np.int64) + 1) * sum(
            (r + 1) ** 3 for r in range(w)
        )
        for got in results:
            assert got.dtype == np.int64
            np.testing.assert_array_equal(got, want)

    def test_allreduce_sum_multidim(self, backend, w):
        def fn(coll):
            return coll.allreduce_sum(
                np.full((3, 4, 5), coll.rank + 1, dtype=np.int64)
            )

        results, _ = run_spmd(w, fn, backend=backend)
        want = np.full((3, 4, 5), sum(range(1, w + 1)), dtype=np.int64)
        for got in results:
            np.testing.assert_array_equal(got, want)

    def test_allreduce_max(self, backend, w):
        def fn(coll):
            return coll.allreduce_max(
                np.array([float(coll.rank), -float(coll.rank)])
            )

        results, _ = run_spmd(w, fn, backend=backend)
        for got in results:
            np.testing.assert_array_equal(got, np.array([float(w - 1), 0.0]))

    def test_allgather_rank_ordered(self, backend, w):
        def fn(coll):
            return coll.allgather({"rank": coll.rank, "blob": "x" * (coll.rank + 1)})

        results, _ = run_spmd(w, fn, backend=backend)
        for got in results:
            assert [g["rank"] for g in got] == list(range(w))

    def test_broadcast_from_nonzero_root(self, backend, w):
        root = w - 1

        def fn(coll):
            payload = ("secret", coll.rank) if coll.rank == root else None
            return coll.broadcast(payload, root=root)

        results, _ = run_spmd(w, fn, backend=backend)
        assert results == [("secret", root)] * w

    def test_barrier_completes(self, backend, w):
        def fn(coll):
            coll.barrier()
            return coll.rank

        results, _ = run_spmd(w, fn, backend=backend)
        assert results == list(range(w))

    def test_mixed_sequence_stays_in_lockstep(self, backend, w):
        """Back-to-back heterogeneous collectives must not cross wires."""

        def fn(coll):
            a = coll.allreduce_sum(np.array([coll.rank + 1], dtype=np.int64))
            g = coll.allgather(coll.rank * 10)
            b = coll.broadcast("b", root=0)
            m = coll.allreduce_max(np.array([float(coll.rank)]))
            return (int(a[0]), g, b, float(m[0]))

        results, _ = run_spmd(w, fn, backend=backend)
        want = (
            sum(range(1, w + 1)),
            [r * 10 for r in range(w)],
            "b",
            float(w - 1),
        )
        assert results == [want] * w


class TestSimCostAccounting:
    def test_allreduce_ring_steps_and_bytes(self):
        w, elems = 4, 1024
        nbytes = elems * 8

        def fn(coll):
            return coll.allreduce_sum(np.ones(elems, dtype=np.int64))

        _, colls = run_spmd(w, fn, backend="sim")
        for coll in colls:
            # ring allreduce: 2(W-1) steps moving B/W bytes per step per rank
            assert coll.stats.steps_total == 2 * (w - 1)
            assert coll.stats.bytes_total == pytest.approx(
                nbytes * 2 * (w - 1) / w
            )

    def test_allgather_charges_forwarded_blocks_only(self):
        w = 3

        def fn(coll):
            return coll.allgather(np.ones(10, dtype=np.float64))  # 80 B each

        _, colls = run_spmd(w, fn, backend="sim")
        for coll in colls:
            assert coll.stats.bytes_total == pytest.approx(80.0 * (w - 1))
            assert coll.stats.steps_total == w - 1

    def test_single_rank_moves_nothing(self):
        def fn(coll):
            coll.allreduce_sum(np.ones(8, dtype=np.int64))
            coll.allgather("x")
            coll.broadcast("y")
            coll.barrier()
            return True

        _, colls = run_spmd(1, fn, backend="sim")
        assert colls[0].stats.bytes_total == 0.0
        assert colls[0].stats.steps_total == 0

    def test_link_cost_lands_on_device_ledger(self):
        w = 2
        devices = [GpuDevice(TITAN_X_PASCAL) for _ in range(w)]
        link = LinkSpec(bandwidth_gbs=TITAN_X_PASCAL.pcie_bandwidth_gbs)

        def fn(coll):
            return coll.allreduce_sum(np.ones(4096, dtype=np.int64))

        run_spmd(w, fn, backend="sim", devices=devices, link=link)
        for dev in devices:
            names = [t.name for t in dev.ledger.transfers]
            assert "collective_allreduce" in names
            # equal link and PCIe bandwidth: payload bytes carry over 1:1,
            # plus the extra ring-step latency expressed as bytes
            t = next(
                t for t in dev.ledger.transfers if t.name == "collective_allreduce"
            )
            payload = 4096 * 8 * 2 * (w - 1) / w
            extra_lat = (2 * (w - 1)) * PCIE_LATENCY_S - PCIE_LATENCY_S
            assert t.nbytes == pytest.approx(
                payload + extra_lat * TITAN_X_PASCAL.pcie_bandwidth_gbs * 1e9
            )

    def test_comm_counters_recorded(self):
        registry = MetricsRegistry(max_label_sets=1024)
        with use_registry(registry):
            def fn(coll):
                return coll.allreduce_sum(np.ones(16, dtype=np.int64))

            _, colls = run_spmd(3, fn, backend="sim")
        counted = registry.counter(
            "collective_bytes_total", backend="sim", op="allreduce"
        ).value
        assert counted == pytest.approx(sum(c.stats.bytes_total for c in colls))


@pytest.mark.parametrize("backend", BACKENDS)
class TestFaults:
    def test_crash_fails_world_and_names_rank(self, backend):
        faults = FaultPlan(kill_rank=1, kill_round=0)

        def fn(coll):
            coll.fault_point(0)
            coll.barrier()
            return coll.rank

        with pytest.raises(WorkerFailure) as exc:
            run_spmd(3, fn, backend=backend, faults=faults)
        assert sorted(exc.value.failed_ranks) == [1]

    def test_fault_only_at_its_round(self, backend):
        faults = FaultPlan(kill_rank=0, kill_round=5)

        def fn(coll):
            for round_ in range(3):
                coll.fault_point(round_)
                coll.barrier()
            return "done"

        results, _ = run_spmd(2, fn, backend=backend, faults=faults)
        assert results == ["done", "done"]

    def test_real_bug_reraises_as_itself(self, backend):
        def fn(coll):
            if coll.rank == 0:
                raise ValueError("genuine bug")
            coll.barrier()
            return coll.rank

        with pytest.raises(ValueError, match="genuine bug"):
            run_spmd(2, fn, backend=backend)


class TestStraggler:
    def test_sim_straggler_is_modeled_not_slept(self):
        faults = FaultPlan(straggler_rank=0, straggler_delay_s=0.5)
        devices = [GpuDevice(TITAN_X_PASCAL) for _ in range(2)]

        def fn(coll):
            coll.fault_point(0)
            coll.barrier()
            return True

        _, colls = run_spmd(2, fn, backend="sim", devices=devices, faults=faults)
        assert colls[0].stats.wait_s == pytest.approx(0.5)
        assert colls[1].stats.wait_s == 0.0
        stalls = [
            t for t in devices[0].ledger.transfers if t.name == "straggler_stall"
        ]
        assert len(stalls) == 1
        # half a second of stall at PCIe bandwidth, minus one transfer latency
        want = (0.5 - PCIE_LATENCY_S) * TITAN_X_PASCAL.pcie_bandwidth_gbs * 1e9
        assert stalls[0].nbytes == pytest.approx(want)

    def test_threaded_straggler_really_waits(self):
        faults = FaultPlan(
            straggler_rank=1, straggler_delay_s=0.05, straggler_round=0
        )

        def fn(coll):
            coll.fault_point(0)
            coll.barrier()
            return True

        _, colls = run_spmd(2, fn, backend="threaded", faults=faults)
        assert colls[1].stats.wait_s >= 0.05


class TestRendezvous:
    def test_abort_never_breaks_a_completed_generation(self):
        """A rank that passes a rendezvous and then aborts (crash at its
        next fault point) must not spuriously break peers still draining
        the generation it completed -- the stdlib Barrier gets this wrong,
        which made rank 0's end-of-round checkpoint racy."""
        rv = _Rendezvous(2)
        errors = []

        def waiter():
            try:
                rv.wait()
            except threading.BrokenBarrierError:
                errors.append("broken")

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)  # waiter is blocked inside the rendezvous
        rv.wait()  # completes the generation ...
        rv.abort()  # ... and immediately breaks the *next* one
        t.join(timeout=5)
        assert not t.is_alive() and errors == []

    def test_abort_breaks_incomplete_generation_and_later_arrivals(self):
        rv = _Rendezvous(2)
        caught = []

        def waiter():
            try:
                rv.wait()
            except threading.BrokenBarrierError:
                caught.append(True)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        rv.abort()  # generation never filled: the waiter must break
        t.join(timeout=5)
        assert caught == [True]
        with pytest.raises(threading.BrokenBarrierError):
            rv.wait()
