"""Facade backend matrix: every backend trains through the same API and the
relationships between them hold (identity, approximation, drift)."""

import numpy as np
import pytest

from repro import BACKENDS, GBDTParams, GradientBoostedTrees, models_equal
from repro.gpusim.device import A100_80GB, TITAN_X_PASCAL
from repro.gpusim.kernel import GpuDevice


class TestBackendMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_fits_and_predicts(self, covtype_small, backend):
        ds = covtype_small
        est = GradientBoostedTrees(
            GBDTParams(n_trees=2, max_depth=3), backend=backend
        ).fit(ds.X, ds.y)
        out = est.predict(ds.X_test)
        assert out.shape == (ds.X_test.n_rows,)
        assert np.all(np.isfinite(out))

    def test_backend_registry(self):
        assert set(BACKENDS) == {
            "gpu-gbdt", "cpu-reference", "xgb-gpu-dense", "histogram"
        }

    def test_histogram_backend_matches_exact_on_quantized(self, covtype_small):
        ds = covtype_small
        p = GBDTParams(n_trees=2, max_depth=3)
        exact = GradientBoostedTrees(p, backend="gpu-gbdt").fit(ds.X, ds.y)
        # covtype run-scale distinct values fit into the default 64 bins? use
        # the device-facing facade and compare training predictions loosely
        hist = GradientBoostedTrees(p, backend="histogram").fit(ds.X, ds.y)
        e = exact.predict(ds.X)
        h = hist.predict(ds.X)
        assert np.corrcoef(e, h)[0, 1] > 0.99

    def test_eval_set_works_on_every_backend(self, covtype_small):
        ds = covtype_small
        for backend in BACKENDS:
            est = GradientBoostedTrees(
                GBDTParams(n_trees=3, max_depth=2), backend=backend
            ).fit(ds.X, ds.y, eval_set=(ds.X_test, ds.y_test))
            assert est.eval_history_.shape == (3,)


class TestA100WhatIf:
    def test_a100_faster_than_titan(self, susy_small):
        ds = susy_small
        p = GBDTParams(n_trees=3, max_depth=4)
        times = {}
        for spec in (TITAN_X_PASCAL, A100_80GB):
            d = GpuDevice(spec, work_scale=ds.work_scale, seg_scale=ds.seg_scale)
            GradientBoostedTrees(p, device=d, row_scale=ds.row_scale).fit(ds.X, ds.y)
            times[spec.name] = d.elapsed_seconds()
        # HBM2e vs GDDR5X: ~4x bandwidth should shine through a
        # memory-bound workload
        assert times["A100 80GB"] < times["Titan X (Pascal)"] / 2

    def test_a100_memory_holds_what_titan_cannot(self):
        import dataclasses

        from repro.bench.harness import run_gpu_gbdt
        from repro.data import make_dataset

        base = make_dataset("insurance", run_rows=250)
        huge = dataclasses.replace(
            base,
            spec=dataclasses.replace(
                base.spec, n_full=60_000_000, d_full=142, density_full=0.9
            ),
        )
        p = GBDTParams(n_trees=1, max_depth=4)
        assert run_gpu_gbdt(huge, p, spec=TITAN_X_PASCAL).status == "oom"
        assert run_gpu_gbdt(huge, p, spec=A100_80GB).status == "ok"
