"""Tests for RLE node splitting: Directly-Split-RLE (Fig. 7) must equal the
decompress -> partition -> recompress path (Fig. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import plan_partition, partition_segments
from repro.core.rle_split import split_runs_direct, split_runs_with_decompression
from repro.data.rle import encode_segments
from repro.gpusim import GpuDevice, TITAN_X_PASCAL


def dev():
    return GpuDevice(TITAN_X_PASCAL)


def make_state(values, offsets):
    return encode_segments(np.asarray(values, float), np.asarray(offsets, np.int64))


def element_partition(device, offsets, side, left_seg, right_seg, n_new):
    plan = plan_partition(int(offsets[-1]), 1, max_counter_mem_bytes=2**30)
    return partition_segments(device, offsets, side, left_seg, right_seg, n_new, plan)


class TestFig7Example:
    def test_each_run_splits_into_at_most_two(self):
        """A run whose instances straddle the split yields a left part and a
        right part; single-sided runs yield one (zero-length removed)."""
        values = [3.0, 3.0, 3.0, 1.0, 1.0]
        offsets = np.array([0, 5])
        rle = make_state(values, offsets)
        #           3s: L, R, L     1s: R, R
        side = np.array([0, 1, 0, 1, 1], dtype=np.int8)
        out = split_runs_direct(dev(), rle, side, np.array([0]), np.array([1]), 2)
        # left child: run (3.0, len 2); right child: (3.0, 1), (1.0, 2)
        assert list(out.run_values) == [3.0, 3.0, 1.0]
        assert list(out.run_lengths) == [2, 1, 2]
        assert list(out.run_offsets) == [0, 1, 3]

    def test_zero_length_runs_removed(self):
        """'We use prefix sum to remove the RLE element with length of 0.'"""
        values = [2.0, 2.0, 1.0]
        rle = make_state(values, np.array([0, 3]))
        side = np.array([0, 0, 0], dtype=np.int8)  # everything goes left
        out = split_runs_direct(dev(), rle, side, np.array([0]), np.array([1]), 2)
        assert out.n_runs == 2  # no empty right-side runs survive
        assert list(out.run_offsets) == [0, 2, 2]

    def test_dropped_segment(self):
        rle = make_state([5.0, 5.0], np.array([0, 2]))
        side = np.array([-1, -1], dtype=np.int8)
        out = split_runs_direct(dev(), rle, side, np.array([-1]), np.array([-1]), 1)
        assert out.n_runs == 0
        assert list(out.run_offsets) == [0, 0]

    def test_misaligned_side_rejected(self):
        rle = make_state([1.0], np.array([0, 1]))
        with pytest.raises(ValueError):
            split_runs_direct(dev(), rle, np.zeros(5, np.int8), np.array([0]), np.array([1]), 2)


class TestEquivalenceWithDecompression:
    def _both(self, values, offsets, side, left_seg, right_seg, n_new):
        rle = make_state(values, offsets)
        direct = split_runs_direct(
            dev(), rle, side, np.asarray(left_seg), np.asarray(right_seg), n_new
        )
        d2 = dev()
        dest, new_off = element_partition(
            d2, np.asarray(offsets, np.int64), side,
            np.asarray(left_seg), np.asarray(right_seg), n_new,
        )
        via_decomp = split_runs_with_decompression(d2, rle, dest, new_off)
        return direct, via_decomp

    def test_simple_case(self):
        side = np.array([0, 1, 0, 1, 1], dtype=np.int8)
        a, b = self._both([3.0, 3.0, 3.0, 1.0, 1.0], [0, 5], side, [0], [1], 2)
        assert np.array_equal(a.run_values, b.run_values)
        assert np.array_equal(a.run_lengths, b.run_lengths)
        assert np.array_equal(a.run_offsets, b.run_offsets)

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_direct_equals_decompress(self, data):
        """The paper's two splitting strategies are interchangeable."""
        n_seg = data.draw(st.integers(1, 4))
        chunks, offsets = [], [0]
        for _ in range(n_seg):
            seg = sorted(
                data.draw(st.lists(st.sampled_from([1.0, 2.0, 3.0]), min_size=0, max_size=8)),
                reverse=True,
            )
            chunks.append(seg)
            offsets.append(offsets[-1] + len(seg))
        values = np.array([v for c in chunks for v in c])
        offsets = np.array(offsets, dtype=np.int64)
        n = values.size
        side = np.array(
            [data.draw(st.sampled_from([0, 1]))] * 0
            + [data.draw(st.sampled_from([0, 1])) for _ in range(n)],
            dtype=np.int8,
        )
        # node-major mapping: children of seg s -> 2s (L) and 2s+1 (R)
        left_seg = np.arange(n_seg) * 2
        right_seg = np.arange(n_seg) * 2 + 1
        a, b = self._both(values, offsets, side, left_seg, right_seg, 2 * n_seg)
        assert np.array_equal(a.run_values, b.run_values)
        assert np.array_equal(a.run_lengths, b.run_lengths)
        assert np.array_equal(a.run_offsets, b.run_offsets)

    def test_with_drops(self):
        side = np.array([0, 1, -1, -1], dtype=np.int8)
        a, b = self._both(
            [4.0, 4.0, 2.0, 2.0], [0, 2, 4], side, [0, -1], [1, -1], 2
        )
        assert np.array_equal(a.run_values, b.run_values)
        assert np.array_equal(a.run_lengths, b.run_lengths)


class TestCostShape:
    def test_direct_moves_fewer_bytes_than_decompression(self):
        """The point of Fig. 7: no full decompress/recompress round trip."""
        rng = np.random.default_rng(0)
        values = np.sort(rng.choice([1.0, 2.0, 3.0], size=4000))[::-1]
        offsets = np.array([0, 4000])
        side = (rng.random(4000) < 0.5).astype(np.int8)
        rle = make_state(values, offsets)

        d_direct = dev()
        split_runs_direct(d_direct, rle, side, np.array([0]), np.array([1]), 2)

        d_dec = dev()
        dest, new_off = element_partition(
            d_dec, offsets, side, np.array([0]), np.array([1]), 2
        )
        bytes_dec_before = d_dec.ledger.total_bytes
        split_runs_with_decompression(d_dec, rle, dest, new_off)
        bytes_dec = d_dec.ledger.total_bytes - bytes_dec_before

        assert d_direct.ledger.total_bytes < bytes_dec
