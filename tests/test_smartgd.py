"""Tests for SmartGD vs. traversal gradient computation."""

import numpy as np
import pytest

from repro import GBDTParams, GradientBoostedTrees, GpuDevice, TITAN_X_PASCAL
from repro.core.smartgd import GradientComputer
from repro.core.tree import DecisionTree
from repro.data import CSRMatrix
from repro.losses import SquaredErrorLoss


def leaf_tree(value: float) -> DecisionTree:
    t = DecisionTree()
    t.add_root()
    t.set_leaf(0, value)
    return t


@pytest.fixture
def xy():
    X = CSRMatrix.from_rows([[(0, 1.0)], [(0, 2.0)], [(0, 3.0)]], n_cols=1)
    y = np.array([1.0, 2.0, 3.0])
    return X, y


class TestSmartGDPath:
    def test_initial_gradients_from_base_score(self, xy):
        X, y = xy
        gc = GradientComputer(GpuDevice(TITAN_X_PASCAL), SquaredErrorLoss(), y)
        g, h = gc.compute()
        assert np.allclose(g, 2 * (0.0 - y))
        assert np.allclose(h, 2.0)

    def test_leaf_updates_accumulate(self, xy):
        X, y = xy
        gc = GradientComputer(GpuDevice(TITAN_X_PASCAL), SquaredErrorLoss(), y)
        gc.on_leaves(np.array([0, 2]), np.array([0.5, 0.25]))
        gc.on_leaves(np.array([1]), np.array([1.0]))
        g, _ = gc.compute()
        assert np.allclose(gc.yhat, [0.5, 1.0, 0.25])
        assert np.allclose(g, 2 * (gc.yhat - y))

    def test_empty_leaf_report_is_noop(self, xy):
        X, y = xy
        d = GpuDevice(TITAN_X_PASCAL)
        gc = GradientComputer(d, SquaredErrorLoss(), y)
        gc.on_leaves(np.array([], dtype=np.int64), np.array([]))
        assert len(d.ledger.kernels) == 0

    def test_smartgd_charges_scatter_not_traversal(self, xy):
        X, y = xy
        d = GpuDevice(TITAN_X_PASCAL)
        gc = GradientComputer(d, SquaredErrorLoss(), y)
        gc.on_leaves(np.array([0]), np.array([1.0]))
        gc.on_tree_finished(leaf_tree(1.0))
        gc.compute()
        names = {k.name for k in d.ledger.kernels}
        assert "smartgd_apply_leaf_weights" in names
        assert "predict_by_traversal" not in names


class TestTraversalPath:
    def test_requires_X(self, xy):
        _, y = xy
        with pytest.raises(ValueError, match="requires X"):
            GradientComputer(
                GpuDevice(TITAN_X_PASCAL), SquaredErrorLoss(), y, use_smartgd=False
            )

    def test_traversal_charges_divergent_traffic(self, xy):
        X, y = xy
        d = GpuDevice(TITAN_X_PASCAL)
        gc = GradientComputer(d, SquaredErrorLoss(), y, use_smartgd=False, X=X)
        gc.on_leaves(np.array([0]), np.array([1.0]))  # ignored in this mode
        gc.on_tree_finished(leaf_tree(0.5))
        gc.compute()
        names = {k.name for k in d.ledger.kernels}
        assert "predict_by_traversal" in names
        assert np.allclose(gc.yhat, 0.5)

    def test_pending_trees_flushed_once(self, xy):
        X, y = xy
        d = GpuDevice(TITAN_X_PASCAL)
        gc = GradientComputer(d, SquaredErrorLoss(), y, use_smartgd=False, X=X)
        gc.on_tree_finished(leaf_tree(0.5))
        gc.compute()
        gc.compute()  # no double counting
        assert np.allclose(gc.yhat, 0.5)


class TestEquivalence:
    @pytest.mark.parametrize("dataset", ["covtype_small", "susy_small", "sparse_small"])
    def test_smartgd_equals_traversal_end_to_end(self, dataset, request):
        """The paper's claim behind SmartGD: reusing intermediate results
        gives the same yhat as re-predicting by traversal, bit-for-bit the
        same trees either way."""
        ds = request.getfixturevalue(dataset)
        p = GBDTParams(n_trees=4, max_depth=4)
        from repro import models_equal

        a = GradientBoostedTrees(p, backend="gpu-gbdt").fit(ds.X, ds.y)
        b = GradientBoostedTrees(p.replace(use_smartgd=False), backend="gpu-gbdt").fit(ds.X, ds.y)
        assert models_equal(a.model_, b.model_)
        assert np.allclose(a.predict(ds.X_test), b.predict(ds.X_test))

    def test_predictions_property_flushes(self, xy):
        X, y = xy
        d = GpuDevice(TITAN_X_PASCAL)
        gc = GradientComputer(d, SquaredErrorLoss(), y, use_smartgd=False, X=X)
        gc.on_tree_finished(leaf_tree(0.25))
        assert np.allclose(gc.predictions(), 0.25)
