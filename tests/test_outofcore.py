"""Tests for the out-of-core (column-group streamed) trainer."""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, GpuDevice, TITAN_X_PASCAL, models_equal
from repro.bench.harness import run_gpu_gbdt
from repro.ext.outofcore import OutOfCoreGBDTTrainer, plan_column_groups
from repro.gpusim.memory import DeviceOutOfMemory


class TestGroupPlanning:
    def test_single_group_when_everything_fits(self):
        groups = plan_column_groups(np.array([10, 10, 10]), 1.0, budget_bytes=1e6)
        assert len(groups) == 1
        assert list(groups[0]) == [0, 1, 2]

    def test_splits_when_budget_small(self):
        groups = plan_column_groups(np.array([10, 10, 10]), 1.0, budget_bytes=100)
        assert len(groups) == 3

    def test_work_scale_lifts_sizes(self):
        one = plan_column_groups(np.array([10, 10]), 1.0, budget_bytes=1000)
        scaled = plan_column_groups(np.array([10, 10]), 10.0, budget_bytes=1000)
        assert len(one) == 1 and len(scaled) == 2

    def test_oversized_single_attribute_raises(self):
        with pytest.raises(DeviceOutOfMemory, match="alone"):
            plan_column_groups(np.array([1000]), 1.0, budget_bytes=100)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            plan_column_groups(np.array([1]), 1.0, budget_bytes=0)


class TestTreeIdentity:
    @pytest.mark.parametrize("budget_cols", [1, 3, 1000])
    def test_identical_to_in_memory(self, covtype_small, budget_cols):
        """Streaming never changes the learned trees -- still exact."""
        ds = covtype_small
        p = GBDTParams(n_trees=3, max_depth=4)
        single = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        # size the budget to hold roughly `budget_cols` of the largest
        # columns at a time (first-fit packs by the real per-column sizes)
        per_col = int(np.diff(ds.X.to_csc().indptr).max()) * 8
        ooc = OutOfCoreGBDTTrainer(p, group_budget_bytes=per_col * budget_cols + 64)
        model = ooc.fit(ds.X, ds.y)
        assert models_equal(model, single)
        expected_groups = 1 if budget_cols >= ds.X.n_cols else None
        if expected_groups:
            assert ooc.n_groups_ == 1
        else:
            assert ooc.n_groups_ > 1

    def test_identical_on_sparse_without_rle(self, sparse_small):
        ds = sparse_small
        p = GBDTParams(n_trees=2, max_depth=3, use_rle=False)
        single = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        ooc = OutOfCoreGBDTTrainer(p, group_budget_bytes=ds.X.nnz * 2)
        model = ooc.fit(ds.X, ds.y)
        assert models_equal(model, single)
        assert ooc.n_groups_ > 1


class TestEconomics:
    def test_streaming_costs_pcie_time(self, covtype_small):
        """More groups => more PCIe traffic => slower modeled training."""
        ds = covtype_small
        p = GBDTParams(n_trees=2, max_depth=3)
        per_col = int(np.diff(ds.X.to_csc().indptr).max()) * 8

        small = OutOfCoreGBDTTrainer(
            p, work_scale=ds.work_scale, row_scale=ds.row_scale,
            group_budget_bytes=per_col * ds.work_scale * 4,
        )
        small.fit(ds.X, ds.y)
        big = OutOfCoreGBDTTrainer(
            p, work_scale=ds.work_scale, row_scale=ds.row_scale,
            group_budget_bytes=per_col * ds.work_scale * 1000,
        )
        big.fit(ds.X, ds.y)
        assert small.n_groups_ > big.n_groups_ == 1
        assert small.elapsed_seconds() > big.elapsed_seconds()

    def test_trains_where_in_memory_ooms(self):
        """The headline: a dataset whose lists exceed device memory trains
        out-of-core and still learns the exact trees."""
        import dataclasses

        from repro.data import make_dataset

        base = make_dataset("insurance", run_rows=250)
        huge = dataclasses.replace(
            base,
            spec=dataclasses.replace(
                base.spec, n_full=60_000_000, d_full=142, density_full=0.9
            ),
        )
        p = GBDTParams(n_trees=1, max_depth=4)
        inmem = run_gpu_gbdt(huge, p)
        assert inmem.status == "oom"

        ooc = OutOfCoreGBDTTrainer(
            p, work_scale=huge.work_scale, seg_scale=huge.seg_scale,
            row_scale=huge.row_scale,
        )
        model = ooc.fit(huge.X, huge.y)
        assert ooc.n_groups_ > 1
        reference = GPUGBDTTrainer(p).fit(huge.X, huge.y)
        assert models_equal(model, reference)
