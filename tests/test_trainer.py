"""End-to-end trainer tests: tree identity across every optimization
combination and against the independent CPU reference (the paper's
Table-II 'identical trees' verification)."""

import itertools

import numpy as np
import pytest

from repro import (
    GBDTParams,
    GPUGBDTTrainer,
    GpuDevice,
    GradientBoostedTrees,
    TITAN_X_PASCAL,
    models_equal,
)
from repro.cpu.exact_greedy import ReferenceTrainer
from repro.data import make_dataset, table1_example
from repro.metrics import rmse

ABLATION_GRID = list(itertools.product([True, False], repeat=3))


class TestTable1:
    def test_trains_on_paper_example(self, table1):
        X, y = table1
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=2)).fit(X, y)
        assert model.n_trees == 2
        assert np.isfinite(model.predict(X)).all()

    def test_matches_reference_on_paper_example(self, table1):
        X, y = table1
        p = GBDTParams(n_trees=3, max_depth=3)
        a = GPUGBDTTrainer(p).fit(X, y)
        b = ReferenceTrainer(p).fit(X, y)
        assert models_equal(a, b)


class TestTreeIdentity:
    @pytest.mark.parametrize("dataset", ["covtype_small", "susy_small", "sparse_small"])
    def test_identical_to_reference_all_ablations(self, dataset, request):
        ds = request.getfixturevalue(dataset)
        base = GBDTParams(n_trees=4, max_depth=4)
        ref = ReferenceTrainer(base).fit(ds.X, ds.y)
        for rle, direct, smart in ABLATION_GRID:
            p = base.replace(
                use_rle=rle,
                use_direct_rle=direct,
                use_smartgd=smart,
                rle_policy="always" if rle else "never",
            )
            got = GPUGBDTTrainer(p).fit(ds.X, ds.y)
            assert models_equal(got, ref), (dataset, rle, direct, smart)

    def test_setkey_and_workload_do_not_change_trees(self, covtype_small):
        ds = covtype_small
        base = GBDTParams(n_trees=3, max_depth=4)
        ref = GPUGBDTTrainer(base).fit(ds.X, ds.y)
        for setkey, workload in itertools.product([True, False], repeat=2):
            p = base.replace(use_custom_setkey=setkey, use_custom_workload=workload)
            got = GPUGBDTTrainer(p).fit(ds.X, ds.y)
            assert models_equal(got, ref)

    def test_rmse_identical_to_reference(self, covtype_small):
        """The 'rmse' columns of Table II: ours == xgbst."""
        ds = covtype_small
        p = GBDTParams(n_trees=5, max_depth=4)
        a = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        b = ReferenceTrainer(p).fit(ds.X, ds.y)
        assert rmse(ds.y, a.predict(ds.X)) == pytest.approx(rmse(ds.y, b.predict(ds.X)), abs=1e-10)


class TestTrainingBehaviour:
    def test_boosting_reduces_training_rmse(self, susy_small):
        ds = susy_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=10, max_depth=4)).fit(ds.X, ds.y)
        staged = model.staged_predict(ds.X)
        first = rmse(ds.y, staged[0])
        last = rmse(ds.y, staged[-1])
        assert last < first

    def test_max_depth_respected(self, covtype_small):
        ds = covtype_small
        for depth in (1, 2, 4):
            model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=depth)).fit(ds.X, ds.y)
            assert all(t.max_depth() <= depth for t in model.trees)

    def test_gamma_prunes_splits(self, covtype_small):
        ds = covtype_small
        loose = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=5, gamma=0.0)).fit(ds.X, ds.y)
        strict = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=5, gamma=1e6)).fit(ds.X, ds.y)
        assert sum(t.n_nodes for t in strict.trees) < sum(t.n_nodes for t in loose.trees)
        # an impossibly large gamma yields single-leaf trees
        assert all(t.n_nodes == 1 for t in strict.trees)

    def test_n_instances_partition_at_every_split(self, covtype_small):
        ds = covtype_small
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(ds.X, ds.y)
        for t in model.trees:
            for nid in range(t.n_nodes):
                if not t.is_leaf(nid):
                    l, r = t.left[nid], t.right[nid]
                    assert t.n_instances[nid] == t.n_instances[l] + t.n_instances[r]
                    assert t.n_instances[l] > 0 and t.n_instances[r] > 0

    def test_report_populated(self, covtype_small):
        ds = covtype_small
        trainer = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=3))
        trainer.fit(ds.X, ds.y)
        assert trainer.report is not None
        assert trainer.report.used_rle  # covtype is highly compressible
        assert trainer.report.compression_ratio > 2
        assert trainer.report.n_nodes_total > 0

    def test_report_tree_statistics(self, covtype_small):
        ds = covtype_small
        trainer = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3))
        model = trainer.fit(ds.X, ds.y)
        r = trainer.report
        assert r.n_trees == 3
        assert r.tree_sizes == [t.n_nodes for t in model.trees]
        assert sum(r.tree_sizes) == r.n_nodes_total
        assert 0 < r.max_depth_seen <= 3
        assert r.mean_tree_size == pytest.approx(sum(r.tree_sizes) / 3)

    def test_learning_rate_scales_leaves(self, susy_small):
        ds = susy_small
        p1 = GBDTParams(n_trees=1, max_depth=2, learning_rate=1.0)
        p2 = GBDTParams(n_trees=1, max_depth=2, learning_rate=0.5)
        a = GPUGBDTTrainer(p1).fit(ds.X, ds.y)
        b = GPUGBDTTrainer(p2).fit(ds.X, ds.y)
        # same first-tree structure, halved leaf values
        assert a.trees[0].attr == b.trees[0].attr
        av = np.array(a.trees[0].value)
        bv = np.array(b.trees[0].value)
        assert np.allclose(bv, av / 2, atol=1e-12)

    def test_logistic_loss_trains(self, susy_small):
        ds = susy_small
        p = GBDTParams(n_trees=5, max_depth=3, loss="logistic")
        model = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        probs = model.predict(ds.X, transform=True)
        assert np.all((probs >= 0) & (probs <= 1))


class TestDeviceInteraction:
    def test_phases_recorded(self, covtype_small):
        ds = covtype_small
        d = GpuDevice(TITAN_X_PASCAL)
        GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=3), d).fit(ds.X, ds.y)
        phases = set(d.ledger.phases())
        assert {"setup", "gradients", "find_split", "split_node"} <= phases

    def test_split_finding_dominates(self, susy_small):
        """Section IV-A: finding the best split is ~95% of GPU-GBDT time
        at full scale; at any scale it must dominate the phase profile."""
        from repro.gpusim.costmodel import phase_times

        ds = susy_small
        d = GpuDevice(TITAN_X_PASCAL, work_scale=ds.work_scale, seg_scale=ds.seg_scale)
        GPUGBDTTrainer(GBDTParams(n_trees=4, max_depth=5), d, row_scale=ds.row_scale).fit(
            ds.X, ds.y
        )
        per = phase_times(TITAN_X_PASCAL, d.ledger)
        assert per["find_split"] == max(per.values())

    def test_memory_registered(self, covtype_small):
        ds = covtype_small
        d = GpuDevice(TITAN_X_PASCAL)
        GPUGBDTTrainer(GBDTParams(n_trees=1, max_depth=2), d).fit(ds.X, ds.y)
        names = set(d.memory.live_allocations())
        assert "instance_ids" in names
        assert "rle_runs" in names  # covtype compresses

    def test_pcie_upload_recorded(self, covtype_small):
        ds = covtype_small
        d = GpuDevice(TITAN_X_PASCAL)
        GPUGBDTTrainer(GBDTParams(n_trees=1, max_depth=2), d).fit(ds.X, ds.y)
        assert any(t.name == "upload_training_data" for t in d.ledger.transfers)

    def test_rle_reduces_upload_bytes(self, covtype_small):
        ds = covtype_small
        d1 = GpuDevice(TITAN_X_PASCAL)
        GPUGBDTTrainer(
            GBDTParams(n_trees=1, max_depth=2, rle_policy="always"), d1
        ).fit(ds.X, ds.y)
        d2 = GpuDevice(TITAN_X_PASCAL)
        GPUGBDTTrainer(
            GBDTParams(n_trees=1, max_depth=2, use_rle=False), d2
        ).fit(ds.X, ds.y)
        up1 = sum(t.nbytes for t in d1.ledger.transfers if t.name == "upload_training_data")
        up2 = sum(t.nbytes for t in d2.ledger.transfers if t.name == "upload_training_data")
        assert up1 < up2


class TestInputValidation:
    def test_y_size_mismatch(self, table1):
        X, y = table1
        with pytest.raises(ValueError, match="entries"):
            GPUGBDTTrainer(GBDTParams(n_trees=1)).fit(X, y[:2])

    def test_too_few_instances(self):
        from repro.data import CSRMatrix

        X = CSRMatrix.from_rows([[(0, 1.0)]], n_cols=1)
        with pytest.raises(ValueError, match="at least 2"):
            GPUGBDTTrainer(GBDTParams(n_trees=1)).fit(X, np.array([1.0]))


class TestFacade:
    def test_backend_dispatch(self, covtype_small):
        ds = covtype_small
        p = GBDTParams(n_trees=2, max_depth=3)
        gpu = GradientBoostedTrees(p, backend="gpu-gbdt").fit(ds.X, ds.y)
        ref = GradientBoostedTrees(p, backend="cpu-reference").fit(ds.X, ds.y)
        assert models_equal(gpu.model_, ref.model_)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            GradientBoostedTrees(backend="tpu")

    def test_kwarg_overrides(self, covtype_small):
        ds = covtype_small
        est = GradientBoostedTrees(n_trees=2, max_depth=2).fit(ds.X, ds.y)
        assert est.model_.n_trees == 2

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            GradientBoostedTrees().predict(np.zeros((1, 1)))

    def test_ndarray_input(self, susy_small):
        ds = susy_small
        dense = ds.X.to_dense(fill=0.0).values
        est = GradientBoostedTrees(n_trees=2, max_depth=3).fit(dense, ds.y)
        out = est.predict(dense)
        assert out.shape == (ds.X.n_rows,)

    def test_as_csr_nan_is_missing(self):
        from repro.core.booster import as_csr

        X = as_csr(np.array([[1.0, np.nan], [0.0, 2.0]]))
        assert X.nnz == 3
        assert X.get(0, 1) is None
        assert X.get(1, 0) == 0.0  # zeros stay real observations
