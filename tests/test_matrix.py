"""Tests for dense/CSR/CSC matrices (Section II-A representations)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.matrix import CSCMatrix, CSRMatrix, DenseMatrix


@pytest.fixture
def table1_csr() -> CSRMatrix:
    """The paper's Table I sparse representation."""
    return CSRMatrix.from_rows(
        [
            [(2, 0.1)],
            [(0, 1.2), (2, 0.1), (3, 0.6)],
            [(0, 0.5), (1, 1.0)],
            [(0, 1.2), (2, 2.0)],
        ],
        n_cols=4,
    )


class TestDense:
    def test_shape(self):
        m = DenseMatrix(np.zeros((3, 2)))
        assert m.shape == (3, 2)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            DenseMatrix(np.zeros(3))

    def test_to_csr_drops_absent_value(self):
        m = DenseMatrix(np.array([[0.0, 1.0], [2.0, 0.0]]))
        s = m.to_csr()
        assert s.nnz == 2
        assert s.get(0, 1) == 1.0
        assert s.get(0, 0) is None

    def test_fp32_footprint(self):
        assert DenseMatrix(np.zeros((10, 5))).nbytes_fp32 == 200

    def test_equality(self):
        a = DenseMatrix(np.ones((2, 2)))
        assert a == DenseMatrix(np.ones((2, 2)))
        assert a != DenseMatrix(np.zeros((2, 2)))


class TestCSR:
    def test_table1_lookup(self, table1_csr):
        """a3 of x4 is 2.0 in the paper's example (0-based: (3, 2))."""
        assert table1_csr.get(3, 2) == 2.0
        assert table1_csr.get(0, 0) is None

    def test_shape_nnz_density(self, table1_csr):
        assert table1_csr.shape == (4, 4)
        assert table1_csr.nnz == 8
        assert table1_csr.density == pytest.approx(0.5)

    def test_row_view(self, table1_csr):
        cols, vals = table1_csr.row(1)
        assert list(cols) == [0, 2, 3]
        assert list(vals) == [1.2, 0.1, 0.6]

    def test_from_rows_sorts_columns(self):
        m = CSRMatrix.from_rows([[(3, 1.0), (1, 2.0)]])
        cols, vals = m.row(0)
        assert list(cols) == [1, 3]
        assert list(vals) == [2.0, 1.0]

    def test_from_rows_ncols_too_small(self):
        with pytest.raises(ValueError, match="n_cols"):
            CSRMatrix.from_rows([[(5, 1.0)]], n_cols=3)

    def test_from_coo_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CSRMatrix.from_coo(
                np.array([0, 0]), np.array([1, 1]), np.array([1.0, 2.0]),
                n_rows=1, n_cols=2,
            )

    def test_from_coo_unsorted_input(self):
        m = CSRMatrix.from_coo(
            np.array([1, 0, 1]), np.array([0, 1, 2]), np.array([5.0, 6.0, 7.0]),
            n_rows=2, n_cols=3,
        )
        assert m.get(1, 0) == 5.0 and m.get(0, 1) == 6.0 and m.get(1, 2) == 7.0

    def test_to_dense_fill_semantics(self, table1_csr):
        zero_filled = table1_csr.to_dense(fill=0.0)
        assert zero_filled.values[0, 0] == 0.0  # xgbst-gpu's behaviour
        nan_filled = table1_csr.to_dense(fill=np.nan)
        assert np.isnan(nan_filled.values[0, 0])
        assert nan_filled.values[0, 2] == 0.1

    def test_to_dense_matches_table1(self, table1_csr):
        expected = np.array(
            [
                [0.0, 0.0, 0.1, 0.0],
                [1.2, 0.0, 0.1, 0.6],
                [0.5, 1.0, 0.0, 0.0],
                [1.2, 0.0, 2.0, 0.0],
            ]
        )
        assert np.array_equal(table1_csr.to_dense(0.0).values, expected)

    def test_select_rows(self, table1_csr):
        sub = table1_csr.select_rows(np.array([3, 1]))
        assert sub.n_rows == 2
        assert sub.get(0, 2) == 2.0  # old row 3
        assert sub.get(1, 3) == 0.6  # old row 1

    def test_select_rows_empty(self, table1_csr):
        sub = table1_csr.select_rows(np.array([], dtype=np.int64))
        assert sub.n_rows == 0 and sub.nnz == 0

    def test_validation_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 5]), np.array([0]), np.array([1.0]), n_cols=2)

    def test_validation_col_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([9]), np.array([1.0]), n_cols=2)


class TestCSC:
    def test_transpose_roundtrip(self, table1_csr):
        assert table1_csr.to_csc().to_csr() == table1_csr

    def test_column_view_matches_paper(self, table1_csr):
        """Column a1 holds x2, x3, x4 (0-based rows 1, 2, 3)."""
        rows, vals = table1_csr.to_csc().column(0)
        assert list(rows) == [1, 2, 3]
        assert list(vals) == [1.2, 0.5, 1.2]

    def test_empty_column(self, table1_csr):
        csc = table1_csr.to_csc()
        rows, _ = csc.column(1)
        assert list(rows) == [2]

    def test_csc_shape(self, table1_csr):
        csc = table1_csr.to_csc()
        assert csc.shape == (4, 4)
        assert csc.nnz == 8

    def test_stability_of_transpose(self):
        """Rows stay ascending within each column (counting sort)."""
        m = CSRMatrix.from_rows([[(0, 1.0)], [(0, 2.0)], [(0, 3.0)]])
        rows, vals = m.to_csc().column(0)
        assert list(rows) == [0, 1, 2]
        assert list(vals) == [1.0, 2.0, 3.0]


@given(
    st.integers(1, 10),
    st.integers(1, 8),
    st.floats(0.1, 1.0),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(n, d, density, rnd):
    """CSR -> CSC -> CSR and CSR -> dense -> CSR are identities."""
    rng = np.random.default_rng(rnd.randint(0, 2**31))
    dense = rng.uniform(0.5, 2.0, size=(n, d)) * (rng.random((n, d)) < density)
    csr = DenseMatrix(dense).to_csr()
    assert csr.to_csc().to_csr() == csr
    assert csr.to_dense(0.0).to_csr() == csr


class TestValidationHardening:
    def test_unsorted_row_indices_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CSRMatrix(
                np.array([0, 2]), np.array([3, 1]), np.array([1.0, 2.0]), n_cols=4
            )

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CSRMatrix(
                np.array([0, 2]), np.array([1, 1]), np.array([1.0, 2.0]), n_cols=4
            )

    def test_nan_data_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            CSRMatrix(
                np.array([0, 1]), np.array([0]), np.array([np.nan]), n_cols=1
            )

    def test_inf_data_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            CSRMatrix(
                np.array([0, 1]), np.array([0]), np.array([np.inf]), n_cols=1
            )

    def test_boundary_between_rows_may_decrease(self):
        # last col of row 0 > first col of row 1 is fine
        m = CSRMatrix(
            np.array([0, 1, 2]), np.array([3, 0]), np.array([1.0, 2.0]), n_cols=4
        )
        assert m.get(1, 0) == 2.0
