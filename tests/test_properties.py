"""Cross-cutting hypothesis property tests on end-to-end training.

These drive the whole trainer with randomized datasets and check the
structural invariants DESIGN.md Section 5 lists.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GBDTParams, GPUGBDTTrainer, models_equal
from repro.cpu.exact_greedy import ReferenceTrainer
from repro.data import CSRMatrix
from tests.conftest import random_csr

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def training_problem(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(12, 60))
    d = draw(st.integers(1, 6))
    density = draw(st.floats(0.3, 1.0))
    levels = draw(st.sampled_from([0, 2, 3, 5]))
    X = random_csr(rng, n, d, density=density, levels=levels)
    binary = draw(st.booleans())
    if binary:
        y = (rng.random(n) > 0.5).astype(np.float64)
    else:
        y = rng.normal(size=n)
    return X, y, seed


@given(training_problem(), st.booleans())
@SETTINGS
def test_gpu_matches_reference_on_random_problems(problem, use_rle):
    """The headline invariant under random data: identical trees."""
    X, y, _ = problem
    p = GBDTParams(
        n_trees=3, max_depth=3,
        use_rle=use_rle, rle_policy="always" if use_rle else "never",
    )
    a = GPUGBDTTrainer(p).fit(X, y)
    b = ReferenceTrainer(p).fit(X, y)
    assert models_equal(a, b)


@given(training_problem())
@SETTINGS
def test_instance_counts_partition(problem):
    X, y, _ = problem
    model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(X, y)
    for t in model.trees:
        for nid in range(t.n_nodes):
            if not t.is_leaf(nid):
                assert (
                    t.n_instances[nid]
                    == t.n_instances[t.left[nid]] + t.n_instances[t.right[nid]]
                )


@given(training_problem())
@SETTINGS
def test_training_predictions_match_tree_routing(problem):
    """SmartGD's accumulated yhat == routing every instance through every
    tree -- prediction consistency."""
    X, y, _ = problem
    trainer = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3))
    model = trainer.fit(X, y)
    direct = model.predict(X)
    per_row = np.array(
        [
            sum(t.predict_row(*X.row(i)) for t in model.trees)
            for i in range(X.n_rows)
        ]
    )
    assert np.allclose(direct, per_row, atol=1e-12)


@given(training_problem())
@SETTINGS
def test_split_gains_recorded_positive(problem):
    X, y, _ = problem
    model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(X, y)
    for t in model.trees:
        for nid in range(t.n_nodes):
            if not t.is_leaf(nid):
                assert t.gain[nid] > 0.0


@given(training_problem())
@SETTINGS
def test_gamma_monotonically_prunes(problem):
    X, y, _ = problem
    sizes = []
    for gamma in (0.0, 0.5, 5.0):
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4, gamma=gamma)).fit(X, y)
        sizes.append(sum(t.n_nodes for t in model.trees))
    assert sizes[0] >= sizes[1] >= sizes[2]


@given(training_problem())
@SETTINGS
def test_constant_targets_yield_stumps(problem):
    X, _, _ = problem
    y = np.full(X.n_rows, 3.0)
    model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(X, y)
    assert all(t.n_nodes == 1 for t in model.trees)
    # and the ensemble converges toward the constant
    pred = model.predict(X)
    assert np.all(np.abs(pred - 3.0) < 3.0)


def test_duplicate_rows_share_leaves():
    """Identical instances can never be separated by any split."""
    X = CSRMatrix.from_rows([[(0, 1.0)], [(0, 1.0)], [(0, 5.0)]], n_cols=1)
    y = np.array([0.0, 1.0, 1.0])
    model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(X, y)
    pred = model.predict(X)
    assert pred[0] == pred[1]
