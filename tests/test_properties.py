"""Cross-cutting hypothesis property tests on end-to-end training.

These drive the whole trainer with randomized datasets and check the
structural invariants DESIGN.md Section 5 lists.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GBDTParams, GPUGBDTTrainer, models_equal
from repro.cpu.exact_greedy import ReferenceTrainer
from repro.data import CSRMatrix
from tests.conftest import random_csr

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def training_problem(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(12, 60))
    d = draw(st.integers(1, 6))
    density = draw(st.floats(0.3, 1.0))
    levels = draw(st.sampled_from([0, 2, 3, 5]))
    X = random_csr(rng, n, d, density=density, levels=levels)
    binary = draw(st.booleans())
    if binary:
        y = (rng.random(n) > 0.5).astype(np.float64)
    else:
        y = rng.normal(size=n)
    return X, y, seed


@given(training_problem(), st.booleans())
@SETTINGS
def test_gpu_matches_reference_on_random_problems(problem, use_rle):
    """The headline invariant under random data: identical trees."""
    X, y, _ = problem
    p = GBDTParams(
        n_trees=3, max_depth=3,
        use_rle=use_rle, rle_policy="always" if use_rle else "never",
    )
    a = GPUGBDTTrainer(p).fit(X, y)
    b = ReferenceTrainer(p).fit(X, y)
    assert models_equal(a, b)


@given(training_problem())
@SETTINGS
def test_instance_counts_partition(problem):
    X, y, _ = problem
    model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(X, y)
    for t in model.trees:
        for nid in range(t.n_nodes):
            if not t.is_leaf(nid):
                assert (
                    t.n_instances[nid]
                    == t.n_instances[t.left[nid]] + t.n_instances[t.right[nid]]
                )


@given(training_problem())
@SETTINGS
def test_training_predictions_match_tree_routing(problem):
    """SmartGD's accumulated yhat == routing every instance through every
    tree -- prediction consistency."""
    X, y, _ = problem
    trainer = GPUGBDTTrainer(GBDTParams(n_trees=3, max_depth=3))
    model = trainer.fit(X, y)
    direct = model.predict(X)
    per_row = np.array(
        [
            sum(t.predict_row(*X.row(i)) for t in model.trees)
            for i in range(X.n_rows)
        ]
    )
    assert np.allclose(direct, per_row, atol=1e-12)


@given(training_problem())
@SETTINGS
def test_split_gains_recorded_positive(problem):
    X, y, _ = problem
    model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(X, y)
    for t in model.trees:
        for nid in range(t.n_nodes):
            if not t.is_leaf(nid):
                assert t.gain[nid] > 0.0


@given(training_problem())
@SETTINGS
def test_gamma_monotonically_prunes(problem):
    X, y, _ = problem
    sizes = []
    for gamma in (0.0, 0.5, 5.0):
        model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4, gamma=gamma)).fit(X, y)
        sizes.append(sum(t.n_nodes for t in model.trees))
    assert sizes[0] >= sizes[1] >= sizes[2]


@given(training_problem())
@SETTINGS
def test_constant_targets_yield_stumps(problem):
    X, _, _ = problem
    y = np.full(X.n_rows, 3.0)
    model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(X, y)
    assert all(t.n_nodes == 1 for t in model.trees)
    # and the ensemble converges toward the constant
    pred = model.predict(X)
    assert np.all(np.abs(pred - 3.0) < 3.0)


def test_duplicate_rows_share_leaves():
    """Identical instances can never be separated by any split."""
    X = CSRMatrix.from_rows([[(0, 1.0)], [(0, 1.0)], [(0, 5.0)]], n_cols=1)
    y = np.array([0.0, 1.0, 1.0])
    model = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4)).fit(X, y)
    pred = model.predict(X)
    assert pred[0] == pred[1]


# --------------------------------------------------------------- metamorphic
# Seeded dataset fuzzer + metamorphic relations: each test below transforms
# the training problem in a way with a *provable* effect on the result and
# asserts exactly that effect.


@st.composite
def adversarial_problem(draw, quantize=True):
    """Dense problems stacked with the hot path's worst cases: fully-missing
    (NaN) column blocks, constant and duplicate columns, duplicate rows,
    single-row nodes (tiny n, deep trees) and extreme target magnitudes."""
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(6, 48))
    d = draw(st.integers(2, 7))
    dense = rng.normal(size=(n, d))
    levels = draw(st.sampled_from([0, 2, 4])) if quantize else 0
    if levels:
        dense = np.round(dense * levels) / levels  # duplicate values -> runs
    mask = rng.random((n, d)) < draw(st.floats(0.4, 1.0))
    if draw(st.booleans()):  # a fully-missing (all-NaN) column block
        mask[:, draw(st.integers(0, d - 1))] = False
    if draw(st.booleans()):  # constant column
        dense[:, draw(st.integers(0, d - 1))] = 1.5
    if d >= 2 and draw(st.booleans()):  # duplicate column (guaranteed gain tie)
        dense[:, d - 1] = dense[:, 0]
        mask[:, d - 1] = mask[:, 0]
    if n >= 8 and draw(st.booleans()):  # duplicate rows
        dense[n // 2 :] = dense[: n - n // 2]
        mask[n // 2 :] = mask[: n - n // 2]
    scale = 10.0 ** float(draw(st.integers(-3, 4)))  # extreme gradients
    y = (dense @ rng.normal(size=d) + rng.normal(scale=0.1, size=n)) * scale
    r, c = np.nonzero(mask)
    X = CSRMatrix.from_coo(r, c, dense[r, c], n_rows=n, n_cols=d)
    return X, dense, mask, y, seed


def _csr_from(dense, mask):
    r, c = np.nonzero(mask)
    return CSRMatrix.from_coo(
        r, c, dense[r, c], n_rows=dense.shape[0], n_cols=dense.shape[1]
    )


@given(adversarial_problem(quantize=False))
@SETTINGS
def test_feature_permutation_invariance(problem):
    """Relabeling features must not change predictions: the same instances
    end up in the same leaves.  Continuous values only -- quantized columns
    can tie two *different* features' gains exactly, where attr-order
    tie-breaking legitimately picks different splits.  Duplicate columns tie
    too, but either winner induces the identical partition, so predictions
    differ at most by float summation order."""
    X, dense, mask, y, seed = problem
    d = dense.shape[1]
    perm = np.random.default_rng(seed + 1).permutation(d)
    Xp = _csr_from(dense[:, perm], mask[:, perm])
    p = GBDTParams(n_trees=3, max_depth=4)
    base = GPUGBDTTrainer(p).fit(X, y).predict(X)
    permuted = GPUGBDTTrainer(p).fit(Xp, y).predict(Xp)
    scale = max(1.0, float(np.max(np.abs(base))))
    assert np.allclose(base, permuted, rtol=1e-9, atol=1e-9 * scale)


@given(adversarial_problem())
@SETTINGS
def test_instance_duplication_equals_doubled_weight(problem):
    """Training on every instance twice with doubled regularization is the
    same problem: Eq. (2) gains become (2G)^2/(2H + 2*lambda) = 2x and leaf
    weights -2G/(2H + 2*lambda) are unchanged, so (with gamma 0) trees and
    predictions agree."""
    X, dense, mask, y, _ = problem
    lam = 0.7
    p1 = GBDTParams(n_trees=2, max_depth=3, lambda_=lam, gamma=0.0)
    p2 = GBDTParams(n_trees=2, max_depth=3, lambda_=2 * lam, gamma=0.0)
    X2 = _csr_from(np.vstack([dense, dense]), np.vstack([mask, mask]))
    y2 = np.concatenate([y, y])
    single = GPUGBDTTrainer(p1).fit(X, y).predict(X)
    doubled = GPUGBDTTrainer(p2).fit(X2, y2).predict(X2)
    assert np.allclose(doubled[: y.size], doubled[y.size :], rtol=0, atol=0)
    scale = max(1.0, float(np.max(np.abs(single))))
    assert np.allclose(single, doubled[: y.size], rtol=1e-9, atol=1e-9 * scale)


@given(adversarial_problem(), st.booleans())
@SETTINGS
def test_rle_on_off_identity(problem, direct):
    """Compressed and raw attribute lists must grow byte-identical trees
    (paper Section III-C: RLE is an encoding, not an approximation)."""
    X, _, _, y, _ = problem
    on = GPUGBDTTrainer(
        GBDTParams(n_trees=2, max_depth=4, rle_policy="always", use_direct_rle=direct)
    ).fit(X, y)
    off = GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=4, rle_policy="never")).fit(X, y)
    # to_json embeds the (intentionally different) params; the *trees* and
    # base score must match exactly
    assert models_equal(on, off)


@given(adversarial_problem(), st.sampled_from(["never", "always", "paper"]))
@SETTINGS
def test_arena_on_off_identity(problem, rle_policy):
    """The workspace arena is a pure allocation strategy: serialized models
    must be byte-identical with it on and off."""
    X, _, _, y, _ = problem
    p = GBDTParams(n_trees=2, max_depth=4, rle_policy=rle_policy)
    on = GPUGBDTTrainer(p, use_arena=True).fit(X, y)
    off = GPUGBDTTrainer(p, use_arena=False).fit(X, y)
    assert on.to_json() == off.to_json()


@given(adversarial_problem(), st.sampled_from([4, 16]))
@SETTINGS
def test_hist_subtraction_on_off_identity(problem, max_bins):
    """Sibling subtraction is exact int64 arithmetic, not an approximation:
    the histogram trainer must serialize byte-identical models with it on
    and off, across the adversarial layouts."""
    from repro.approx.histogram_trainer import HistogramGBDTTrainer

    X, _, _, y, _ = problem
    p = GBDTParams(n_trees=2, max_depth=4)
    on = HistogramGBDTTrainer(p, max_bins=max_bins, use_subtraction=True).fit(X, y)
    off = HistogramGBDTTrainer(p, max_bins=max_bins, use_subtraction=False).fit(X, y)
    assert on.to_json() == off.to_json()


@given(adversarial_problem())
@SETTINGS
def test_goss_off_is_exactly_full_training(problem):
    """GOSS at a=1 must take the pre-sampling code path bit-for-bit --
    consuming no randomness and touching no gradient -- whatever b is set
    to.  (Params differ, so compare trees, not serialized JSON.)"""
    from repro.approx.histogram_trainer import HistogramGBDTTrainer

    X, _, _, y, _ = problem
    base = GBDTParams(n_trees=2, max_depth=4)
    off = GBDTParams(n_trees=2, max_depth=4, goss_a=1.0, goss_b=0.7)
    a = HistogramGBDTTrainer(base, max_bins=16).fit(X, y)
    b = HistogramGBDTTrainer(off, max_bins=16).fit(X, y)
    assert models_equal(a, b)


@pytest.mark.parametrize("w", [1, 2, 4])
def test_dist_subtraction_and_goss_off_identity(w):
    """The W-sharded trainer inherits both knobs through the shared grow
    loop: subtraction on/off and GOSS-off must land on the single-process
    reference model for W in {1, 2, 4}."""
    from repro.approx.histogram_trainer import HistogramGBDTTrainer
    from repro.data import make_dataset
    from repro.dist import DistributedHistTrainer

    ds = make_dataset("covtype", run_rows=160, seed=13)
    p = GBDTParams(n_trees=3, max_depth=4, seed=7)
    reference = HistogramGBDTTrainer(
        p, max_bins=16, use_subtraction=False
    ).fit(ds.X, ds.y).to_json()
    for use_subtraction in (True, False):
        model = DistributedHistTrainer(
            p, n_workers=w, max_bins=16, use_subtraction=use_subtraction
        ).fit(ds.X, ds.y)
        assert model.to_json() == reference
    goss_off = DistributedHistTrainer(
        p.replace(goss_b=0.5), n_workers=w, max_bins=16
    ).fit(ds.X, ds.y)
    assert models_equal(goss_off, HistogramGBDTTrainer(p, max_bins=16).fit(ds.X, ds.y))


@given(adversarial_problem())
@SETTINGS
def test_predictions_within_label_hull(problem):
    """For squared loss a single tree's leaf weights are shrunk leaf means:
    every prediction lies in the hull of the labels and the 0 base score."""
    X, _, _, y, _ = problem
    model = GPUGBDTTrainer(GBDTParams(n_trees=1, max_depth=5, learning_rate=1.0)).fit(X, y)
    pred = model.predict(X)
    lo, hi = min(0.0, float(y.min())), max(0.0, float(y.max()))
    slack = 1e-12 * max(1.0, abs(lo), abs(hi))
    assert np.all(pred >= lo - slack) and np.all(pred <= hi + slack)
