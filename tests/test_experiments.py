"""Smoke tests for every table/figure driver at quick scale."""

import numpy as np
import pytest

from repro.bench import experiments as ex


@pytest.fixture(scope="module")
def table2_quick():
    return ex.run_table2(quick=True, names=("covtype", "susy", "news20"))


class TestTable2:
    def test_row_shape(self, table2_quick):
        assert len(table2_quick.rows) == 3
        r = table2_quick.row("covtype")
        assert r["cardinality"] == 581_012
        assert r["ours"] > 0
        assert r["speedup40"] > 1.0

    def test_rmse_equality_between_engines(self, table2_quick):
        for r in table2_quick.rows:
            assert r["rmse_ours"] == pytest.approx(r["rmse_x40"], abs=1e-10)

    def test_news20_dense_baseline_ooms(self, table2_quick):
        assert table2_quick.row("news20")["xgbstgpu"] is None

    def test_text_renders(self, table2_quick):
        text = table2_quick.text
        assert "Table II" in text
        assert "OOM" in text
        assert "paper bands" in text

    def test_unknown_row(self, table2_quick):
        with pytest.raises(KeyError):
            table2_quick.row("mnist")


class TestFig8:
    def test_fig8a_series(self):
        res = ex.run_fig8a(quick=True, names=("covtype",))
        assert res.xs == [2, 4, 6]
        assert all(s > 1.0 for s in res.series["covtype"])
        assert "depth" in res.text

    def test_fig8b_series(self):
        res = ex.run_fig8b(quick=True, names=("susy",))
        assert res.xs == [4, 8]
        vals = res.series["susy"]
        assert all(v > 1.0 for v in vals)
        # paper: "rather stable as the number of trees increases"
        assert max(vals) / min(vals) < 1.5


class TestFig9:
    def test_ablation_structure(self):
        res = ex.run_fig9(quick=True, names=("covtype",))
        assert set(res.ablated_seconds) == set(ex.ABLATIONS)
        slow = res.slowdowns
        # disabling SmartGD must not speed things up
        assert slow["SmartGD"]["covtype"] > -0.02
        assert "Fig. 9" in res.text


class TestFig10:
    def test_fig10a_uses_table2(self, table2_quick):
        res = ex.run_fig10a(table2=table2_quick)
        assert len(res.xs) == 3
        assert all(r > 1.0 for r in res.series["perf-price vs CPU"])

    def test_fig10b_budget_curves(self):
        res = ex.run_fig10b(quick=True)
        assert len(res.budgets) == 10
        assert all(0 <= e <= 0.5 for e in res.gpu_error)
        # GPU reaches low error before the CPU does at small budgets
        assert res.gpu_error[1] <= res.cpu_error[1]
        assert "Fig. 10b" in res.text


class TestCaseStudies:
    def test_three_cases(self):
        res = ex.run_case_studies(quick=True)
        assert len(res.rows) == 3
        for r in res.rows:
            assert r["speedup"] > 1.0
        assert "case studies" in res.text


class TestLoaders:
    def test_quick_datasets_are_small(self):
        for ds in ex.load_table2_datasets(quick=True, names=("covtype",)):
            assert ds.X.n_rows <= 300

    def test_full_loader_uses_spec_defaults(self):
        (ds,) = ex.load_table2_datasets(names=("susy",))
        assert ds.X.n_rows + ds.X_test.n_rows == 4000
