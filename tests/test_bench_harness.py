"""Tests for the experiment harness and report formatting."""

import numpy as np
import pytest

from repro import GBDTParams
from repro.bench.harness import dense_scales, run_cpu_baseline, run_gpu_gbdt, run_xgb_gpu
from repro.bench.pricing import normalized_ratio, performance_price_ratio
from repro.bench.report import PAPER_BANDS, fmt_cell, format_series, format_table
from repro.data import make_dataset


@pytest.fixture(scope="module")
def ds():
    return make_dataset("covtype", run_rows=200, seed=17)


@pytest.fixture(scope="module")
def quick_params():
    return GBDTParams(n_trees=2, max_depth=3)


class TestRunners:
    def test_gpu_run(self, ds, quick_params):
        res = run_gpu_gbdt(ds, quick_params)
        assert res.ok
        assert res.seconds > 0
        assert res.train_rmse is not None
        assert "find_split" in res.phase_seconds

    def test_cpu_runs_share_one_fit(self, ds, quick_params):
        one, forty, runner = run_cpu_baseline(ds, quick_params)
        assert one.system == "xgbst-1" and forty.system == "xgbst-40"
        assert one.train_rmse == forty.train_rmse
        assert one.seconds > forty.seconds
        assert one.model is forty.model

    def test_gpu_and_cpu_rmse_match(self, ds, quick_params):
        """The Table-II RMSE columns: ours == xgbst-40."""
        g = run_gpu_gbdt(ds, quick_params)
        _, forty, _ = run_cpu_baseline(ds, quick_params)
        assert g.train_rmse == pytest.approx(forty.train_rmse, abs=1e-10)

    def test_xgb_gpu_runs_or_ooms_cleanly(self, quick_params):
        ds_oom = make_dataset("news20", run_rows=100, run_cols=30, seed=17)
        res = run_xgb_gpu(ds_oom, quick_params)
        assert res.status == "oom"
        assert res.seconds is None
        assert "GiB" in res.notes

    def test_dense_scales_ignore_density(self):
        ds = make_dataset("real-sim", run_rows=100, run_cols=20, seed=1)
        ws, ss = dense_scales(ds)
        cells_run = ds.X.n_rows * 20
        assert ws == pytest.approx(72_309 * 20_958 / cells_run)


class TestPricing:
    def test_ratio_formula(self):
        assert performance_price_ratio(2.0, 100.0) == pytest.approx(1 / 200)

    def test_invalid(self):
        with pytest.raises(ValueError):
            performance_price_ratio(0.0, 1.0)

    def test_normalized_ratio_uses_paper_prices(self):
        """Equal runtimes: the GPU wins exactly by the price ratio
        1878 / 1200."""
        assert normalized_ratio(10.0, 10.0) == pytest.approx(1878 / 1200)

    def test_faster_gpu_increases_ratio(self):
        assert normalized_ratio(5.0, 10.0) == pytest.approx(2 * 1878 / 1200)


class TestReport:
    def test_fmt_cell_oom(self):
        assert fmt_cell(None).strip() == "OOM"

    def test_fmt_cell_float_sizes(self):
        assert fmt_cell(12345.0).strip() == "12,345"
        assert fmt_cell(12.345).strip() == "12.3"
        assert fmt_cell(1.23456).strip() == "1.235"

    def test_format_table_alignment(self):
        out = format_table(["a", "b"], [[1, 2.5], [None, 3.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "OOM" in out

    def test_format_series(self):
        out = format_series("x", [1, 2], {"s": [0.1, 0.2]})
        assert "0.100" in out and "0.200" in out

    def test_paper_bands_present(self):
        assert PAPER_BANDS["speedup_vs_xgbst40"] == (1.5, 2.0)
        assert PAPER_BANDS["split_share_gpu"] == 0.95
