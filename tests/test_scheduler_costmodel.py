"""Tests for block scheduling/occupancy and the kernel cost model."""

import pytest

from repro.gpusim import GpuDevice, TITAN_X_PASCAL, TESLA_K20
from repro.gpusim.costmodel import kernel_time, phase_times, total_time, transfer_time
from repro.gpusim.scheduler import occupancy


class TestOccupancy:
    def test_full_grid_full_utilization(self):
        occ = occupancy(TITAN_X_PASCAL, blocks=10_000, threads_per_block=256)
        assert occ.utilization == 1.0
        assert occ.waves >= 1

    def test_tiny_grid_underutilizes(self):
        """The paper's granularity challenge: few blocks leave SMs idle."""
        occ = occupancy(TITAN_X_PASCAL, blocks=7, threads_per_block=256)
        assert occ.utilization == pytest.approx(7 / 28)

    def test_small_blocks_waste_warp_lanes(self):
        occ = occupancy(TITAN_X_PASCAL, blocks=1000, threads_per_block=8)
        assert occ.utilization == pytest.approx(8 / 32)

    def test_dispatch_cost_grows_with_blocks(self):
        a = occupancy(TITAN_X_PASCAL, blocks=1000, threads_per_block=256)
        b = occupancy(TITAN_X_PASCAL, blocks=1_000_000, threads_per_block=256)
        assert b.dispatch_seconds > 100 * a.dispatch_seconds

    def test_waves(self):
        occ = occupancy(TITAN_X_PASCAL, blocks=1, threads_per_block=256)
        assert occ.waves == 1
        big = occupancy(TITAN_X_PASCAL, blocks=10**6, threads_per_block=256)
        assert big.waves > 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            occupancy(TITAN_X_PASCAL, blocks=0, threads_per_block=256)


class TestKernelTime:
    def _mk(self, **kw):
        d = GpuDevice(TITAN_X_PASCAL)
        d.launch("k", **kw)
        return d

    def test_memory_bound_kernel_scales_with_bytes(self):
        d1 = self._mk(elements=1000, coalesced_bytes=1e6)
        d2 = self._mk(elements=1000, coalesced_bytes=1e8)
        t1 = kernel_time(TITAN_X_PASCAL, d1.ledger.kernels[0])
        t2 = kernel_time(TITAN_X_PASCAL, d2.ledger.kernels[0])
        assert t2 > t1 * 10

    def test_irregular_bytes_cost_more_than_coalesced(self):
        """The paper's challenge 1: irregular accesses dominate."""
        d1 = self._mk(elements=1000, coalesced_bytes=1e8)
        d2 = self._mk(elements=1000, irregular_bytes=1e8)
        t1 = kernel_time(TITAN_X_PASCAL, d1.ledger.kernels[0])
        t2 = kernel_time(TITAN_X_PASCAL, d2.ledger.kernels[0])
        assert t2 > 3 * t1

    def test_launch_latency_floor(self):
        d = self._mk(elements=1)
        t = kernel_time(TITAN_X_PASCAL, d.ledger.kernels[0])
        assert t >= TITAN_X_PASCAL.kernel_launch_us * 1e-6

    def test_multi_launch_overhead(self):
        d1 = self._mk(elements=1, launches=1)
        d2 = self._mk(elements=1, launches=100)
        t1 = kernel_time(TITAN_X_PASCAL, d1.ledger.kernels[0])
        t2 = kernel_time(TITAN_X_PASCAL, d2.ledger.kernels[0])
        assert t2 > t1 * 50

    def test_slower_device_is_slower(self):
        d = GpuDevice(TITAN_X_PASCAL)
        k = d.launch("k", elements=10**7, coalesced_bytes=8e8)
        assert kernel_time(TESLA_K20, k) > kernel_time(TITAN_X_PASCAL, k)

    def test_huge_one_block_per_segment_grid_costs_dispatch(self):
        """The Customized-SetKey effect: millions of tiny blocks hurt."""
        d = GpuDevice(TITAN_X_PASCAL)
        small = d.launch("setkey_on", elements=10**6, coalesced_bytes=8e6, blocks=28_000)
        big = d.launch("setkey_off", elements=10**6, coalesced_bytes=8e6, blocks=40_000_000)
        assert kernel_time(TITAN_X_PASCAL, big) > 2 * kernel_time(TITAN_X_PASCAL, small)


class TestTransfersAndTotals:
    def test_transfer_time_includes_latency(self):
        d = GpuDevice(TITAN_X_PASCAL)
        t = d.transfer("tiny", 1)
        assert transfer_time(TITAN_X_PASCAL, t) >= 20e-6

    def test_pcie_slower_than_device_memory(self):
        """Section II-C: PCIe is an order of magnitude slower."""
        d = GpuDevice(TITAN_X_PASCAL)
        k = d.launch("k", elements=10**7, coalesced_bytes=1e9)
        t = d.transfer("t", 1e9)
        assert transfer_time(TITAN_X_PASCAL, t) > 5 * kernel_time(TITAN_X_PASCAL, k)

    def test_total_time_is_sum(self):
        d = GpuDevice(TITAN_X_PASCAL)
        d.launch("a", elements=1000, coalesced_bytes=1e6)
        d.launch("b", elements=1000, coalesced_bytes=1e6)
        parts = [kernel_time(TITAN_X_PASCAL, k) for k in d.ledger.kernels]
        assert total_time(TITAN_X_PASCAL, d.ledger) == pytest.approx(sum(parts))

    def test_phase_times_partition_total(self):
        d = GpuDevice(TITAN_X_PASCAL)
        with d.phase("a"):
            d.launch("k", elements=1000, coalesced_bytes=1e6)
        with d.phase("b"):
            d.launch("k", elements=1000, coalesced_bytes=1e7)
            d.transfer("t", 1e6)
        per = phase_times(TITAN_X_PASCAL, d.ledger)
        assert set(per) == {"a", "b"}
        assert sum(per.values()) == pytest.approx(total_time(TITAN_X_PASCAL, d.ledger))
        assert per["b"] > per["a"]
