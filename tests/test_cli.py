"""Tests for the CLI driver (python -m repro ...)."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestMain:
    def test_quick_table2(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "regenerated in" in out

    def test_multiple_experiments_dedup(self, capsys):
        assert main(["fig10b", "fig10b", "--quick"]) == 0
        out = capsys.readouterr().out
        assert out.count("Fig. 10b") == 1

    def test_all_alias_contains_every_experiment(self):
        assert set(EXPERIMENTS) == {
            "table2", "fig8a", "fig8b", "fig9", "fig10a", "fig10b", "cases", "devices",
            "approx", "crossover", "multigpu", "threads", "serve-bench",
            "pipeline-bench",
        }

    def test_pipeline_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["pipeline"])

    def test_pipeline_kill_maps_to_exit_3(self, tmp_path, capsys):
        rc = main(
            ["pipeline", "demo", "--quick", "--ckpt-dir", str(tmp_path),
             "--kill-at-round", "1"]
        )
        assert rc == 3
        assert "simulated kill" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_requires_an_experiment(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cases_quick(self, capsys):
        assert main(["cases", "--quick"]) == 0
        assert "case studies" in capsys.readouterr().out
