"""Tier-1 perf smoke: the hot path must not silently regress.

Wall-clock gates are inherently noisy, so the thresholds are generous
(``max_time_ratio`` x the recorded baseline seconds, a conservative floor on
the arena speedup) and the whole module can be skipped on constrained or
shared machines with ``REPRO_SKIP_PERF=1``.

``results/perf_baseline.json`` is the contract; ``docs/performance.md``
documents how to refresh it after an intentional perf change.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.hotpath import HOTPATH_WORKLOADS, run_workload

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF") == "1",
    reason="REPRO_SKIP_PERF=1: wall-clock gates disabled",
)

_BASELINE_PATH = Path(__file__).resolve().parent.parent / "results" / "perf_baseline.json"


@pytest.fixture(scope="module")
def baseline() -> dict:
    return json.loads(_BASELINE_PATH.read_text(encoding="utf-8"))


def test_baseline_document_shape(baseline):
    assert set(baseline["gates"]) >= {"max_time_ratio", "min_medium_speedup"}
    for name in ("medium", "smoke"):
        row = baseline["workloads"][name]
        assert row["arena_off_s"] > 0 and row["arena_on_s"] > 0


def test_smoke_workload_within_baseline(baseline):
    """Tiny fixed workload stays within ``max_time_ratio`` x recorded time."""
    result = run_workload(HOTPATH_WORKLOADS["smoke"], repeats=3)
    assert result.identical_models
    ratio = float(baseline["gates"]["max_time_ratio"])
    budget = ratio * float(baseline["workloads"]["smoke"]["arena_on_s"])
    assert result.arena_on_s <= budget, (
        f"smoke workload took {result.arena_on_s:.3f}s, budget {budget:.3f}s "
        f"({ratio}x baseline); refresh results/perf_baseline.json if this "
        "machine is legitimately slower (docs/performance.md)"
    )


def _measure_medium_fresh(tmp_path: Path, repeats: int, tag: str) -> dict:
    """Time the medium workload in a **fresh subprocess** via the bench CLI.

    In-process measurement would be wrong here: a long-lived warm heap (such
    as mid-pytest-suite) has raised the allocator's mmap threshold, so the
    legacy path's big per-level temporaries come from cheap free-list memory
    -- erasing the very mmap/page-fault cost the arena removes.  Real fits
    run in fresh processes; the gate measures that regime.
    """
    out = tmp_path / f"hotpath-{tag}.json"
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(filter(None, [src, env.get("PYTHONPATH")]))
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.bench.hotpath",
            "--workloads", "medium", "--repeats", str(repeats), "--out", str(out),
        ],
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, f"bench CLI failed:\n{proc.stdout}\n{proc.stderr}"
    (row,) = json.loads(out.read_text(encoding="utf-8"))["rows"]
    assert row["identical_models"]
    return row


def test_medium_arena_speedup_gate(baseline, tmp_path):
    """The arena must keep paying for itself on the gated medium workload."""
    floor = float(baseline["gates"]["min_medium_speedup"])
    # a transiently loaded machine can compress the off/on ratio, so a miss
    # earns one clean re-measurement (more repeats) before the gate fails
    row = _measure_medium_fresh(tmp_path, repeats=2, tag="first")
    if row["speedup"] < floor:
        row = _measure_medium_fresh(tmp_path, repeats=4, tag="retry")
    assert row["speedup"] >= floor, (
        f"arena speedup {row['speedup']:.2f}x fell below the {floor}x gate "
        f"(off {row['arena_off_s']:.3f}s, on {row['arena_on_s']:.3f}s); see "
        "docs/performance.md"
    )
    budget = float(baseline["gates"]["max_time_ratio"]) * float(
        baseline["workloads"]["medium"]["arena_on_s"]
    )
    assert row["arena_on_s"] <= budget, (
        f"medium workload took {row['arena_on_s']:.3f}s, budget {budget:.3f}s"
    )
