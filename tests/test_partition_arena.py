"""Order-preserving partition on adversarial segment layouts, arena on/off.

``partition_segments`` is the paper's Fig. 2/3 kernel: every old segment's
elements scatter to left/right child segments *keeping their relative
order*.  The arena-backed fused implementation must agree with the legacy
two-pass one element-for-element, including on degenerate layouts (empty
segments, all-left, all-right, dropped sides, empty input).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.partition import partition_segments, plan_partition
from repro.core.workspace import WorkspaceArena
from repro.gpusim.device import TITAN_X_PASCAL
from repro.gpusim.kernel import GpuDevice

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _oracle(offsets, side, left_seg, right_seg, n_new):
    """Reference stable partition in plain Python."""
    n = int(offsets[-1])
    buckets = [[] for _ in range(n_new)]
    for s in range(offsets.size - 1):
        for i in range(offsets[s], offsets[s + 1]):
            tgt = {0: left_seg[s], 1: right_seg[s]}.get(int(side[i]), -1)
            if tgt >= 0:
                buckets[int(tgt)].append(i)
    new_offsets = np.zeros(n_new + 1, dtype=np.int64)
    np.cumsum([len(b) for b in buckets], out=new_offsets[1:])
    dest = np.full(n, -1, dtype=np.int64)
    pos = 0
    for b in buckets:
        for i in b:
            dest[i] = pos
            pos += 1
    return dest, new_offsets


def _run(offsets, side, left_seg, right_seg, n_new, *, arena, trash=False):
    device = GpuDevice(TITAN_X_PASCAL)
    plan = plan_partition(int(offsets[-1]), max(1, left_seg.size), max_counter_mem_bytes=2**30)
    ws = WorkspaceArena(enabled=arena)
    dest, new_off = partition_segments(
        device,
        offsets,
        side,
        left_seg,
        right_seg,
        n_new,
        plan,
        workspace=ws,
        drop_to_trash=trash,
    )
    return np.asarray(dest), np.asarray(new_off)


def _check_case(offsets, side, left_seg, right_seg, n_new):
    offsets = np.asarray(offsets, dtype=np.int64)
    side = np.asarray(side, dtype=np.int8)
    left_seg = np.asarray(left_seg, dtype=np.int64)
    right_seg = np.asarray(right_seg, dtype=np.int64)
    want_dest, want_off = _oracle(offsets, side, left_seg, right_seg, n_new)

    legacy_dest, legacy_off = _run(offsets, side, left_seg, right_seg, n_new, arena=False)
    arena_dest, arena_off = _run(offsets, side, left_seg, right_seg, n_new, arena=True)
    assert np.array_equal(legacy_dest, want_dest)
    assert np.array_equal(legacy_off, want_off)
    assert np.array_equal(arena_dest, want_dest)
    assert np.array_equal(arena_off, want_off)

    # trash mode: dropped elements scatter to the single slot past the end
    trash_dest, trash_off = _run(offsets, side, left_seg, right_seg, n_new, arena=True, trash=True)
    assert np.array_equal(trash_off, want_off)
    dropped = want_dest < 0
    assert np.array_equal(trash_dest[~dropped], want_dest[~dropped])
    assert np.all(trash_dest[dropped] == want_off[-1])

    # exact per-child counts
    for s in range(left_seg.size):
        lo, hi = offsets[s], offsets[s + 1]
        n_left = int(np.sum(side[lo:hi] == 0))
        n_right = int(np.sum(side[lo:hi] == 1))
        if left_seg[s] >= 0:
            j = left_seg[s]
            assert want_off[j + 1] - want_off[j] == n_left
        if right_seg[s] >= 0:
            j = right_seg[s]
            assert want_off[j + 1] - want_off[j] == n_right
    return want_dest, want_off


class TestAdversarialLayouts:
    def test_empty_input(self):
        _check_case([0, 0], [], [0], [1], 2)

    def test_empty_segments_interleaved(self):
        offsets = [0, 0, 3, 3, 5, 5]
        side = [0, 1, 0, 1, 1]
        left = [0, 1, 2, 3, 4]
        right = [5, 6, 7, 8, 9]
        _check_case(offsets, side, left, right, 10)

    def test_all_left(self):
        _check_case([0, 6], np.zeros(6, dtype=np.int8), [0], [1], 2)

    def test_all_right(self):
        _check_case([0, 6], np.ones(6, dtype=np.int8), [0], [1], 2)

    def test_all_dropped(self):
        _check_case([0, 4], np.full(4, -1, dtype=np.int8), [0], [1], 2)

    def test_dropped_left_side(self):
        _check_case([0, 5], [0, 1, 0, 1, 0], [-1], [0], 1)

    def test_dropped_right_side(self):
        _check_case([0, 5], [0, 1, 0, 1, 0], [0], [-1], 1)

    def test_single_element_segments(self):
        offsets = list(range(7))  # six 1-element segments
        side = [0, 1, 0, 1, 0, 1]
        left = [0, 2, 4, 6, 8, 10]
        right = [1, 3, 5, 7, 9, 11]
        _check_case(offsets, side, left, right, 12)

    def test_stable_order_within_children(self):
        """Relative source order survives into every new segment."""
        offsets = np.array([0, 8], dtype=np.int64)
        side = np.array([0, 1, 0, 0, 1, 0, 1, 0], dtype=np.int8)
        dest, new_off = _run(offsets, side, np.array([0]), np.array([1]), 2, arena=True)
        left_sources = np.flatnonzero(side == 0)
        right_sources = np.flatnonzero(side == 1)
        # invert: out[dest[i]] = i for kept elements
        out = np.empty(8, dtype=np.int64)
        out[dest] = np.arange(8)
        assert np.array_equal(out[new_off[0] : new_off[1]], left_sources)
        assert np.array_equal(out[new_off[1] : new_off[2]], right_sources)


@st.composite
def partition_case(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n_seg = draw(st.integers(1, 8))
    lengths = [draw(st.integers(0, 10)) for _ in range(n_seg)]
    offsets = np.zeros(n_seg + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    n = int(offsets[-1])
    side = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n, p=[0.1, 0.45, 0.45])
    # dense new-segment maps with occasional dropped sides
    maps = []
    nxt = 0
    for _ in range(2 * n_seg):
        if rng.random() < 0.15:
            maps.append(-1)
        else:
            maps.append(nxt)
            nxt += 1
    left_seg = np.array(maps[:n_seg], dtype=np.int64)
    right_seg = np.array(maps[n_seg:], dtype=np.int64)
    return offsets, side, left_seg, right_seg, max(1, nxt)


@given(partition_case())
@SETTINGS
def test_fuzz_matches_oracle_with_and_without_arena(case):
    _check_case(*case)


def test_arena_reuses_buffers_across_calls():
    """Repeated partitions on one arena allocate once, then reuse."""
    ws = WorkspaceArena(enabled=True)
    device = GpuDevice(TITAN_X_PASCAL)
    offsets = np.array([0, 40], dtype=np.int64)
    plan = plan_partition(40, 1, max_counter_mem_bytes=2**30)
    rng = np.random.default_rng(0)
    for _ in range(5):
        side = rng.choice(np.array([0, 1], dtype=np.int8), size=40)
        partition_segments(
            device, offsets, side, np.array([0]), np.array([1]), 2, plan, workspace=ws
        )
    assert ws.n_allocs < ws.n_requests
    assert ws.n_reuses > 0
