"""Tests for the decision-tree structure and prediction semantics."""

import numpy as np
import pytest

from repro.core.tree import DecisionTree, trees_equal
from repro.data import CSRMatrix, DenseMatrix


def small_tree() -> DecisionTree:
    """root: a0 > 1.0 (default L); left leaf 2.0; right: a1 > 0.5 -> +-1."""
    t = DecisionTree()
    t.add_root(10)
    lid, rid = t.split_node(0, attr=0, threshold=1.0, default_left=True, gain=5.0)
    t.set_leaf(lid, 2.0)
    l2, r2 = t.split_node(rid, attr=1, threshold=0.5, default_left=False, gain=1.0)
    t.set_leaf(l2, 1.0)
    t.set_leaf(r2, -1.0)
    return t


class TestBuilding:
    def test_single_root(self):
        t = DecisionTree()
        t.add_root()
        with pytest.raises(RuntimeError, match="already has a root"):
            t.add_root()

    def test_counts(self):
        t = small_tree()
        assert t.n_nodes == 5
        assert t.n_leaves == 3
        assert t.max_depth() == 2

    def test_double_split_rejected(self):
        t = DecisionTree()
        t.add_root()
        t.split_node(0, 0, 1.0, False, 1.0)
        with pytest.raises(RuntimeError, match="already split"):
            t.split_node(0, 0, 1.0, False, 1.0)

    def test_leaf_on_internal_rejected(self):
        t = DecisionTree()
        t.add_root()
        t.split_node(0, 0, 1.0, False, 1.0)
        with pytest.raises(RuntimeError, match="internal"):
            t.set_leaf(0, 1.0)

    def test_bad_node_id(self):
        t = DecisionTree()
        t.add_root()
        with pytest.raises(IndexError):
            t.set_leaf(7, 1.0)

    def test_negative_attr_rejected(self):
        t = DecisionTree()
        t.add_root()
        with pytest.raises(ValueError):
            t.split_node(0, -1, 1.0, False, 1.0)

    def test_depth_tracking(self):
        t = small_tree()
        assert t.depth == [0, 1, 1, 2, 2]


class TestPrediction:
    def test_greater_goes_left(self):
        t = small_tree()
        out = t.predict(np.array([[2.0, 0.0]]))
        assert out[0] == 2.0  # a0=2 > 1 -> left leaf

    def test_smaller_goes_right_then_a1(self):
        t = small_tree()
        assert t.predict(np.array([[0.0, 1.0]]))[0] == 1.0  # right, a1 > .5 left
        assert t.predict(np.array([[0.0, 0.0]]))[0] == -1.0

    def test_missing_follows_default(self):
        t = small_tree()
        # a0 missing -> default LEFT at root
        assert t.predict(np.array([[np.nan, 0.0]]))[0] == 2.0
        # a0 small, a1 missing -> default RIGHT at second node
        assert t.predict(np.array([[0.0, np.nan]]))[0] == -1.0

    def test_csr_prediction_missing_semantics(self):
        t = small_tree()
        X = CSRMatrix.from_rows([[(1, 1.0)]], n_cols=2)  # a0 absent
        assert t.predict(X)[0] == 2.0

    def test_predict_row_matches_batch(self):
        t = small_tree()
        X = CSRMatrix.from_rows(
            [[(0, 2.0)], [(0, 0.5), (1, 1.0)], [(1, 0.1)]], n_cols=2
        )
        batch = t.predict(X)
        for i in range(3):
            cols, vals = X.row(i)
            assert t.predict_row(cols, vals) == batch[i]

    def test_dense_matrix_input(self):
        t = small_tree()
        out = t.predict(DenseMatrix(np.array([[2.0, 0.0]])))
        assert out[0] == 2.0

    def test_value_exactly_threshold_goes_right(self):
        t = small_tree()
        assert t.predict(np.array([[1.0, 1.0]]))[0] == 1.0  # 1.0 > 1.0 is False

    def test_single_leaf_tree(self):
        t = DecisionTree()
        t.add_root()
        t.set_leaf(0, 7.0)
        assert t.predict(np.zeros((3, 2)))[0] == 7.0


class TestSerialization:
    def test_dict_roundtrip(self):
        t = small_tree()
        t2 = DecisionTree.from_dict(t.to_dict())
        assert trees_equal(t, t2)

    def test_dump_text_structure(self):
        text = small_tree().dump_text()
        assert "a0 > 1" in text
        assert text.count("leaf") == 3


class TestEquality:
    def test_equal_trees(self):
        assert trees_equal(small_tree(), small_tree())

    def test_different_structure(self):
        t2 = DecisionTree()
        t2.add_root()
        t2.set_leaf(0, 0.0)
        assert not trees_equal(small_tree(), t2)

    def test_different_attr(self):
        a, b = small_tree(), small_tree()
        b.attr[0] = 1
        assert not trees_equal(a, b)

    def test_threshold_within_tolerance(self):
        a, b = small_tree(), small_tree()
        b.threshold[0] += 1e-12
        assert trees_equal(a, b)

    def test_threshold_outside_tolerance(self):
        a, b = small_tree(), small_tree()
        b.threshold[0] += 1e-3
        assert not trees_equal(a, b)

    def test_leaf_value_noise_tolerated(self):
        a, b = small_tree(), small_tree()
        b.value[1] += 1e-13
        assert trees_equal(a, b)

    def test_default_direction_matters(self):
        a, b = small_tree(), small_tree()
        b.default_left[0] = False
        assert not trees_equal(a, b)
