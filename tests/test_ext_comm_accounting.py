"""Comm-volume accounting for the ext trainers (multigpu / outofcore).

The attribute-parallel and out-of-core trainers charge their inter-device
traffic to the gpusim ledgers *and* count the same payloads through the obs
metric ``comm_bytes_total{trainer=,op=}``.  These tests pin both books to
each other and -- for multigpu -- to closed-form formulas derived by
replaying the grown trees:

* ``broadcast_gradients``   = n_trees * (k-1) * n * 16 * row_scale
* ``allreduce_best_splits`` = sum over trees and executed levels L of
  n_active(L) * 64 * (k-1) * k          (every shard charges the exchange)
* ``broadcast_side_array``  = sum over trees and levels of
  #owner-shards(L) * n * row_scale * (k-1), where the owner of attribute a
  under round-robin sharding is device ``a % k`` and a shard charges only
  when it owns at least one winning split at that level.

n_active(L) is the node count at depth L of the final tree -- exact because
the depthwise loop enters level L iff any node exists there, and charges the
allreduce before deciding leaves.
"""

import numpy as np

from repro import GBDTParams
from repro.data import make_dataset
from repro.ext.multigpu import MultiGpuGBDTTrainer
from repro.ext.outofcore import OutOfCoreGBDTTrainer
from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer


def _counter_value(registry, trainer, op):
    return registry.counter("comm_bytes_total", trainer=trainer, op=op).value


def _ledger_bytes(devices, name):
    return sum(
        t.nbytes for dev in devices for t in dev.ledger.transfers if t.name == name
    )


class TestMultiGpuAccounting:
    K = 3

    def _train(self, k=K, n_trees=3, max_depth=4):
        registry = MetricsRegistry(max_label_sets=1024)
        tracer = Tracer(enabled=True)
        with use_registry(registry), use_tracer(tracer):
            ds = make_dataset("covtype", run_rows=400, seed=3)
            trainer = MultiGpuGBDTTrainer(
                GBDTParams(n_trees=n_trees, max_depth=max_depth, seed=7),
                n_devices=k,
            )
            model = trainer.fit(ds.X, ds.y)
        return ds, trainer, model, registry, tracer

    def _analytic(self, ds, trainer, model):
        n = ds.X.shape[0]
        k = trainer.n_devices
        p = trainer.params
        rs = trainer.row_scale
        bg = p.n_trees * (k - 1) * n * 16 * rs
        ar = 0.0
        bs = 0.0
        for tree in model.trees:
            depths = np.asarray(tree.depth)
            for lvl in range(p.max_depth):
                n_active = int((depths == lvl).sum())
                if n_active == 0:
                    break
                ar += n_active * 64 * (k - 1) * k
                owners = {
                    tree.attr[nid] % k
                    for nid in range(tree.n_nodes)
                    if tree.depth[nid] == lvl and not tree.is_leaf(nid)
                }
                bs += len(owners) * n * rs * (k - 1)
        return {
            "broadcast_gradients": bg,
            "allreduce_best_splits": ar,
            "broadcast_side_array": bs,
        }

    def test_counters_match_ledger_and_formulas(self):
        ds, trainer, model, registry, _ = self._train()
        expected = self._analytic(ds, trainer, model)
        assert expected["broadcast_side_array"] > 0  # workload actually splits
        for op, want in expected.items():
            counted = _counter_value(registry, "multigpu", op)
            ledgered = _ledger_bytes(trainer.devices, op)
            assert counted == ledgered == want, (op, counted, ledgered, want)

    def test_row_scale_scales_row_linear_ops(self):
        registry = MetricsRegistry(max_label_sets=1024)
        with use_registry(registry):
            ds = make_dataset("covtype", run_rows=400, seed=3)
            trainer = MultiGpuGBDTTrainer(
                GBDTParams(n_trees=3, max_depth=4, seed=7),
                n_devices=self.K,
                row_scale=8.0,
            )
            model = trainer.fit(ds.X, ds.y)
        expected = self._analytic(ds, trainer, model)
        for op, want in expected.items():
            assert _counter_value(registry, "multigpu", op) == want, op

    def test_boost_round_spans_recorded(self):
        _, trainer, _, _, tracer = self._train()
        spans = [
            s for s in tracer.snapshot() if s["name"] == "multigpu.boost_round"
        ]
        assert len(spans) == trainer.params.n_trees
        assert all(s["attrs"]["devices"] == self.K for s in spans)

    def test_single_device_moves_nothing(self):
        ds, trainer, _, registry, _ = self._train(k=1)
        for op in (
            "broadcast_gradients",
            "allreduce_best_splits",
            "broadcast_side_array",
        ):
            assert _counter_value(registry, "multigpu", op) == 0.0
            assert _ledger_bytes(trainer.devices, op) == 0.0


class TestOutOfCoreAccounting:
    def _train(self, work_scale=1.0):
        registry = MetricsRegistry(max_label_sets=1024)
        tracer = Tracer(enabled=True)
        with use_registry(registry), use_tracer(tracer):
            ds = make_dataset("covtype", run_rows=400, seed=3)
            per_col = int(np.diff(ds.X.to_csc().indptr).max()) * 8 * work_scale
            trainer = OutOfCoreGBDTTrainer(
                GBDTParams(n_trees=3, max_depth=4, seed=7),
                group_budget_bytes=int(per_col * 3) + 64,
                work_scale=work_scale,
            )
            model = trainer.fit(ds.X, ds.y)
        return ds, trainer, model, registry, tracer

    def test_counters_match_ledger(self):
        ds, trainer, model, registry, _ = self._train()
        assert trainer.n_groups_ > 1  # actually streaming
        for op in ("stream_group_in", "stream_group_out", "download_group_winners"):
            counted = _counter_value(registry, "outofcore", op)
            ledgered = _ledger_bytes([trainer.device], op)
            assert counted == ledgered > 0, (op, counted, ledgered)

    def test_counters_match_ledger_at_scale(self):
        # stream_group_{in,out} transfers are work_scale-extrapolated in
        # the ledger; the counters must say the same full-scale bytes
        # (download_group_winners is scale=False on both books)
        ds, trainer, model, registry, _ = self._train(work_scale=3.5)
        assert trainer.n_groups_ > 1
        for op in ("stream_group_in", "stream_group_out", "download_group_winners"):
            counted = _counter_value(registry, "outofcore", op)
            ledgered = _ledger_bytes([trainer.device], op)
            assert counted == ledgered > 0, (op, counted, ledgered)

    def test_winner_download_is_analytic(self):
        ds, trainer, model, registry, _ = self._train()
        want = 0.0
        for tree in model.trees:
            depths = np.asarray(tree.depth)
            for lvl in range(trainer.params.max_depth):
                n_active = int((depths == lvl).sum())
                if n_active == 0:
                    break
                want += n_active * 64 * trainer.n_groups_
        assert _counter_value(registry, "outofcore", "download_group_winners") == want

    def test_boost_round_spans_recorded(self):
        _, trainer, _, _, tracer = self._train()
        spans = [
            s for s in tracer.snapshot() if s["name"] == "outofcore.boost_round"
        ]
        assert len(spans) == trainer.params.n_trees
        assert all(s["attrs"]["groups"] == trainer.n_groups_ for s in spans)
