"""Tests for dataset analysis and the chrome-trace exporter."""

import json

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer, GpuDevice, TITAN_X_PASCAL
from repro.data import CSRMatrix, make_dataset
from repro.data.analysis import analyze
from repro.gpusim.trace import chrome_trace_events, export_chrome_trace


class TestAnalyze:
    def test_basic_counts(self):
        X = CSRMatrix.from_rows(
            [[(0, 1.0), (1, 1.0)], [(0, 1.0)], [(1, 2.0)]], n_cols=2
        )
        st = analyze(X)
        assert (st.n_rows, st.n_cols, st.nnz) == (3, 2, 4)
        assert st.density == pytest.approx(4 / 6)
        assert st.missing_rate == pytest.approx(2 / 6)

    def test_rle_ratio_reflects_repetition(self):
        rep = analyze(CSRMatrix.from_rows([[(0, 1.0)]] * 10, n_cols=1))
        assert rep.rle_ratio == pytest.approx(10.0)
        distinct = analyze(
            CSRMatrix.from_rows([[(0, float(i))] for i in range(10)], n_cols=1)
        )
        assert distinct.rle_ratio == pytest.approx(1.0)

    def test_binary_attr_detection(self):
        X = CSRMatrix.from_rows(
            [[(0, 1.0), (1, 0.3)], [(0, 1.0), (1, 0.7)]], n_cols=2
        )
        st = analyze(X)
        assert st.binary_attr_frac == pytest.approx(0.5)
        assert st.max_distinct_per_attr == 2

    def test_dataset_profiles_differ(self):
        cov = analyze(make_dataset("covtype", run_rows=200).X)
        susy = analyze(make_dataset("susy", run_rows=200).X)
        assert cov.rle_ratio > susy.rle_ratio
        assert susy.density > cov.density
        # RLE shrinks the device footprint only where repetition exists
        assert cov.estimated_rle_bytes < cov.estimated_sparse_bytes

    def test_format_is_readable(self):
        st = analyze(make_dataset("covtype", run_rows=100).X)
        text = st.format()
        assert "RLE ratio" in text and "shape" in text


class TestChromeTrace:
    @pytest.fixture
    def device(self, covtype_small):
        ds = covtype_small
        d = GpuDevice(TITAN_X_PASCAL)
        GPUGBDTTrainer(GBDTParams(n_trees=2, max_depth=3), d).fit(ds.X, ds.y)
        return d

    def test_events_cover_ledger(self, device):
        events = chrome_trace_events(device)
        slices = [e for e in events if e.get("ph") == "X"]
        assert len(slices) == len(device.ledger.kernels) + len(device.ledger.transfers)

    def test_durations_sum_to_modeled_time(self, device):
        events = chrome_trace_events(device)
        total_us = sum(e["dur"] for e in events if e.get("ph") == "X")
        assert total_us == pytest.approx(device.elapsed_seconds() * 1e6, rel=1e-3)

    def test_slices_are_non_overlapping_and_ordered(self, device):
        slices = [e for e in chrome_trace_events(device) if e.get("ph") == "X"]
        end = 0.0
        for e in slices:
            # 3-decimal rounding of ts/dur can misalign by up to a few ns
            assert e["ts"] >= end - 5e-3
            end = e["ts"] + e["dur"]

    def test_phase_rows_labeled(self, device):
        meta = [e for e in chrome_trace_events(device) if e.get("ph") == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"setup", "find_split", "split_node", "pcie"} <= names

    def test_export_file(self, device, tmp_path):
        path = tmp_path / "trace.json"
        n = export_chrome_trace(device, path)
        doc = json.loads(path.read_text())
        assert n > 0
        assert "traceEvents" in doc
