"""Tests for the profiling views (phase breakdowns, Section IV-A style)."""

import pytest

from repro.gpusim import GpuDevice, TITAN_X_PASCAL, format_profile, kernel_breakdown, profile


@pytest.fixture
def busy_device() -> GpuDevice:
    d = GpuDevice(TITAN_X_PASCAL)
    with d.phase("find_split"):
        d.launch("seg_prefix_sum", elements=10**6, coalesced_bytes=1.6e7)
        d.launch("seg_prefix_sum", elements=10**6, coalesced_bytes=1.6e7)
    with d.phase("split_node"):
        d.launch("scatter", elements=10**5, irregular_bytes=1.6e6)
    d.transfer("upload", 1e6)
    return d


def test_profile_fractions_sum_to_one(busy_device):
    slices = profile(busy_device)
    assert sum(s.fraction for s in slices) == pytest.approx(1.0)


def test_profile_phase_order(busy_device):
    assert [s.phase for s in profile(busy_device)] == ["find_split", "split_node", "unphased"]


def test_profile_launch_counts(busy_device):
    slices = {s.phase: s for s in profile(busy_device)}
    assert slices["find_split"].launches == 2
    assert slices["split_node"].launches == 1


def test_kernel_breakdown_aggregates_by_name(busy_device):
    bd = kernel_breakdown(busy_device)
    assert set(bd) == {"seg_prefix_sum", "scatter", "pcie"}
    assert bd["seg_prefix_sum"] > bd["scatter"]


def test_format_profile_is_table(busy_device):
    text = format_profile(busy_device, title="t")
    assert text.startswith("t")
    assert "find_split" in text and "total" in text


def test_empty_device_profile():
    d = GpuDevice(TITAN_X_PASCAL)
    assert profile(d) == []
    assert kernel_breakdown(d) == {}
