"""Per-rank distributed traces: merging, lockstep alignment, flight recorder.

A distributed regression is diagnosed from one merged Perfetto timeline, so
the structural guarantees under test are: one pid per rank, lockstep
sequence numbers monotonic within a rank and aligned across ranks, blocked
time surfaced as ``collective_wait_seconds_total{rank=...}``, typed
:class:`CollectiveTimeout` on a wedged receive, and a flight-recorder
snapshot per rank riding on :class:`WorkerFailure`.
"""

import json

import numpy as np
import pytest

from repro.dist.comms import (
    CollectiveTimeout,
    FaultPlan,
    LinkSpec,
    ThreadedCollective,
    WorkerFailure,
    _World,
    run_spmd,
)
from repro.obs import MetricsRegistry, Tracer, use_registry
from repro.obs.export import (
    HOST_PID,
    RANK_PID_BASE,
    _lockstep_offsets,
    export_merged_chrome_trace,
    merged_chrome_trace_events,
)

BACKENDS = ("sim", "threaded")


def spmd_program(coll):
    """A small fixed collective program every rank executes in lockstep."""
    coll.barrier()
    total = coll.allreduce_sum(np.arange(4, dtype=np.int64) + coll.rank)
    gathered = coll.allgather(coll.rank)
    top = coll.broadcast("model", root=0)
    return total.sum(), gathered, top


def run_world(world_size=4, backend="threaded"):
    tracers = [Tracer(tags={"rank": r}) for r in range(world_size)]
    results, colls = run_spmd(
        world_size, spmd_program, backend=backend, tracers=tracers
    )
    return results, colls, tracers


# ------------------------------------------------------------- merged trace
class TestMergedTrace:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_pid_per_rank(self, backend, tmp_path):
        _, _, tracers = run_world(4, backend)
        path = tmp_path / "dist.trace.json"
        n = export_merged_chrome_trace(path, rank_tracers=tracers)
        assert n > 0
        events = json.loads(path.read_text())["traceEvents"]
        slices = [e for e in events if e.get("ph") == "X"]
        pids = {e["pid"] for e in slices}
        assert pids == {RANK_PID_BASE + r for r in range(4)}
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert "rank 0 (wall-clock spans)" in names
        assert "rank 3 (wall-clock spans)" in names

    def test_lockstep_seq_monotonic_per_rank(self):
        _, _, tracers = run_world(4, "threaded")
        events = merged_chrome_trace_events(rank_tracers=tracers)
        for r in range(4):
            seqs = [
                e["args"]["seq"]
                for e in events
                if e.get("ph") == "X"
                and e["pid"] == RANK_PID_BASE + r
                and e["name"].startswith("dist.")
                and "seq" in e["args"]
            ]
            assert seqs, f"rank {r} recorded no collective spans"
            assert seqs == sorted(seqs)
        # SPMD: every rank ran the same program, so the same seq set
        per_rank = [
            {
                e["args"]["seq"]
                for e in events
                if e.get("ph") == "X"
                and e["pid"] == RANK_PID_BASE + r
                and "seq" in e["args"]
            }
            for r in range(4)
        ]
        assert all(s == per_rank[0] for s in per_rank)

    def test_host_and_ranks_coexist(self):
        host = Tracer()
        with host.span("fit"):
            pass
        _, _, tracers = run_world(2, "sim")
        events = merged_chrome_trace_events(tracer=host, rank_tracers=tracers)
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert pids == {HOST_PID, RANK_PID_BASE, RANK_PID_BASE + 1}
        assert min(e["ts"] for e in events if e.get("ph") == "X") == 0.0

    def test_rank_from_tracer_tags(self):
        """Rank identity comes from the tracer's tag, not list position."""
        _, _, tracers = run_world(2, "sim")
        events = merged_chrome_trace_events(rank_tracers=list(reversed(tracers)))
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert pids == {RANK_PID_BASE, RANK_PID_BASE + 1}


class TestLockstepOffsets:
    @staticmethod
    def ev(name, seq, t_start, t_end):
        return {
            "name": name,
            "attrs": {"seq": seq},
            "t_start": t_start,
            "t_end": t_end,
            "thread_id": 1,
        }

    def test_disjoint_clocks_align_on_first_common_end(self):
        # rank 0's clock starts at 0, rank 1's at 1000 -- the first common
        # collective (seq 1) must coincide at its end
        rank_events = {
            0: [self.ev("dist.barrier", 1, 0.0, 0.5)],
            1: [self.ev("dist.barrier", 1, 1000.0, 1000.2)],
        }
        offsets = _lockstep_offsets(rank_events)
        ref = max(0.5 + offsets[0], 1000.2 + offsets[1])
        assert 0.5 + offsets[0] == pytest.approx(ref)
        assert 1000.2 + offsets[1] == pytest.approx(ref)

    def test_straggler_wait_stays_visible(self):
        # rank 1 entered late (longer span) but ends with rank 0; aligning
        # on span END must preserve the differing widths
        rank_events = {
            0: [self.ev("dist.allreduce_sum", 1, 10.0, 10.1)],
            1: [self.ev("dist.allreduce_sum", 1, 5.0, 6.0)],
        }
        offsets = _lockstep_offsets(rank_events)
        end0 = 10.1 + offsets[0]
        end1 = 6.0 + offsets[1]
        assert end0 == pytest.approx(end1)
        width1 = 6.0 - 5.0  # shifting never changes a span's width
        assert width1 == pytest.approx(1.0)

    def test_no_common_seq_means_no_shift(self):
        rank_events = {
            0: [self.ev("dist.barrier", 1, 0.0, 0.5)],
            1: [self.ev("dist.barrier", 2, 7.0, 7.5)],
        }
        assert _lockstep_offsets(rank_events) == {0: 0.0, 1: 0.0}

    def test_non_dist_spans_ignored(self):
        rank_events = {
            0: [self.ev("compute", 1, 0.0, 9.0), self.ev("dist.b", 2, 9.0, 9.1)],
            1: [self.ev("dist.b", 2, 0.0, 0.1)],
        }
        offsets = _lockstep_offsets(rank_events)
        assert 9.1 + offsets[0] == pytest.approx(0.1 + offsets[1])


# --------------------------------------------------- hot-path span coverage
class TestHotPathSpans:
    """The subtraction/GOSS hot path must be visible in the same merged
    timeline used to diagnose everything else: every rank emits per-level
    ``hist.subtract`` spans under its own pid, and the engagement counters
    land in the active registry."""

    def test_subtract_spans_per_rank_in_merged_trace(self):
        from repro import GBDTParams
        from repro.data import make_dataset
        from repro.dist import DistributedHistTrainer
        from repro.obs import use_tracer

        ds = make_dataset("covtype", run_rows=160, seed=13)
        registry = MetricsRegistry()
        with use_registry(registry), use_tracer(Tracer()):
            trainer = DistributedHistTrainer(
                GBDTParams(n_trees=2, max_depth=4, seed=7),
                n_workers=2,
                max_bins=16,
                use_subtraction=True,
            )
            trainer.fit(ds.X, ds.y)

        events = merged_chrome_trace_events(rank_tracers=trainer.rank_tracers_)
        for r in range(2):
            subs = [
                e
                for e in events
                if e.get("ph") == "X"
                and e["pid"] == RANK_PID_BASE + r
                and e["name"] == "hist.subtract"
            ]
            assert subs, f"rank {r} emitted no hist.subtract spans"
            # each span names the level and how many tables it derived
            for e in subs:
                assert e["args"]["depth"] >= 1
                assert e["args"]["derived"] >= 1
        skipped = registry.get("subtract_skipped_total")
        assert skipped is not None and skipped.value > 0

    def test_goss_counter_lands_in_registry(self):
        from repro import GBDTParams
        from repro.approx.histogram_trainer import HistogramGBDTTrainer
        from repro.data import make_dataset

        ds = make_dataset("covtype", run_rows=160, seed=13)
        registry = MetricsRegistry()
        with use_registry(registry):
            HistogramGBDTTrainer(
                GBDTParams(n_trees=2, max_depth=3, goss_a=0.3, goss_b=0.3),
                max_bins=16,
            ).fit(ds.X, ds.y)
        kept = registry.get("goss_rows_kept_total")
        assert kept is not None and kept.value > 0


# ------------------------------------------------------------ wait metrics
class TestWaitMetrics:
    def test_threaded_run_records_wait_per_rank(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            run_world(4, "threaded")
        waits = {
            inst.label_dict["rank"]: inst.value
            for _, _, _, series in registry.families()
            for inst in series
            if inst.name == "collective_wait_seconds_total"
        }
        assert set(waits) == {"0", "1", "2", "3"}
        assert all(v > 0 for v in waits.values())


# ---------------------------------------------------------------- timeout
class TestCollectiveTimeout:
    def make_collective(self, recv_timeout_s=0.5):
        """A rank-0 collective whose peer never sends, on a fake clock that
        advances a full second per reading (so one real poll suffices)."""
        state = {"t": 0.0}

        def clock():
            state["t"] += 1.0
            return state["t"]

        return ThreadedCollective(
            _World(2),
            0,
            None,  # no device: timeout accounting must not need a ledger
            LinkSpec(),
            None,
            clock=clock,
            tracer=Tracer(tags={"rank": 0}),
            recv_timeout_s=recv_timeout_s,
        )

    def test_recv_timeout_is_typed_and_counted(self):
        coll = self.make_collective()
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(CollectiveTimeout) as excinfo:
                coll._recv("allreduce")
        exc = excinfo.value
        assert exc.rank == 0 and exc.op == "allreduce"
        assert exc.elapsed_s > coll.recv_timeout_s
        assert "rank 0" in str(exc) and "allreduce" in str(exc)
        counter = registry.get(
            "collective_timeout_total", backend="threaded", op="allreduce", rank=0
        )
        assert counter is not None and counter.value == 1

    def test_timeout_captures_flight_snapshot(self):
        coll = self.make_collective()
        with use_registry(MetricsRegistry()):
            with pytest.raises(CollectiveTimeout):
                with coll._op_span("allreduce_sum", nbytes=32):
                    coll._recv("allreduce")
        flight = coll.flight_
        assert flight is not None
        assert flight["rank"] == 0
        assert "timed out" in flight["reason"]
        assert flight["last_op"] == "allreduce_sum" and flight["seq"] == 1
        assert flight["wait_s"] > 0
        assert any(
            sp["name"] == "dist.allreduce_sum" for sp in flight["unclosed"]
        )

    def test_timeout_fails_the_world_as_itself(self):
        """A wedged rank must surface as CollectiveTimeout, never be
        mistaken for an injected fault."""

        def lopsided(coll):
            if coll.rank == 0:
                return coll.allgather(coll.rank)  # peer never shows up
            return None

        with use_registry(MetricsRegistry()):
            with pytest.raises(CollectiveTimeout):
                run_spmd(
                    2, lopsided, backend="threaded", recv_timeout_s=0.3
                )


# --------------------------------------------------------- flight recorder
class TestFlightRecorder:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_failure_carries_snapshots(self, backend):
        def fn(coll):
            coll.fault_point(0)
            coll.barrier()
            return coll.rank

        with use_registry(MetricsRegistry()):
            with pytest.raises(WorkerFailure) as excinfo:
                run_spmd(
                    4,
                    fn,
                    backend=backend,
                    faults=FaultPlan(kill_rank=2, kill_round=0),
                )
        failure = excinfo.value
        assert failure.failed_ranks == {2}
        rec = failure.flight_recorder
        assert rec[2]["reason"] == "injected kill at round 0"
        assert rec[2]["rank"] == 2
        # survivors that were blocked on the dead rank also left snapshots
        survivors = set(rec) - {2}
        assert survivors, "no survivor captured a post-mortem snapshot"
        for r in survivors:
            assert "failure" in rec[r]["reason"]
            assert rec[r]["last_op"] == "barrier"
