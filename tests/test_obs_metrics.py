"""Tests for counters, gauges, histograms, and the metrics registry."""

import math
import threading

import numpy as np
import pytest

from repro.obs import (
    CardinalityError,
    Histogram,
    MetricsRegistry,
    get_registry,
    use_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_address_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", route="a").inc()
        reg.counter("hits_total", route="b").inc(5)
        assert reg.counter("hits_total", route="a").value == 1
        assert reg.counter("hits_total", route="b").value == 5
        # label order is irrelevant to identity
        reg.counter("multi_total", a="1", b="2").inc()
        assert reg.counter("multi_total", b="2", a="1").value == 1


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("queue_depth")
        g.set(10)
        g.inc(3)
        g.dec(5)
        assert g.value == pytest.approx(8.0)


class TestHistogramBuckets:
    def test_le_boundary_semantics(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0), sample_cap=0)
        for v in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            h.observe(v)
        # le=1: 0.5, 1.0 | le=2: 1.5, 2.0 | le=4: 4.0 | +inf: 9.0
        assert h.bucket_counts == [2, 2, 1, 1]
        assert h.cumulative_buckets() == [(1.0, 2), (2.0, 4), (4.0, 5), (math.inf, 6)]
        assert (h.count, h.min, h.max) == (6, 0.5, 9.0)
        assert h.sum == pytest.approx(18.0)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, math.inf))
        with pytest.raises(ValueError):
            Histogram("h", sample_cap=-1)


class TestHistogramPercentiles:
    def test_exact_matches_numpy_linear(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(0.01, size=500)
        h = Histogram("lat")
        for v in values:
            h.observe(v)
        assert h.exact
        for q in (0, 10, 50, 90, 95, 99, 100):
            assert h.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    def test_overflow_degrades_to_bucket_estimates(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0005, 0.5, size=400)
        h = Histogram("lat", sample_cap=100)
        for v in values:
            h.observe(v)
        assert not h.exact
        qs = [10, 50, 90, 99]
        est = [h.percentile(q) for q in qs]
        # estimates stay inside the observed range and are monotone in q
        assert all(h.min <= e <= h.max for e in est)
        assert est == sorted(est)
        # and land in the right ballpark of the true percentiles
        for q, e in zip(qs, est):
            true = float(np.percentile(values, q))
            assert abs(e - true) < 0.1

    def test_empty_and_validation(self):
        h = Histogram("h")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_observation(self):
        h = Histogram("h")
        h.observe(0.042)
        assert h.p50 == pytest.approx(0.042)
        assert h.p99 == pytest.approx(0.042)

    def test_sample_reports_shape(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5)
        s = h.sample()
        assert s["kind"] == "histogram"
        assert s["count"] == 1
        assert s["buckets"] == [[1.0, 1], ["+Inf", 1]]


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert len(reg) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("dual")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("dual")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "9lead", "has space", "has-dash"):
            with pytest.raises(ValueError):
                reg.counter(bad)
        reg.counter("ok_name:subsystem_total")  # colons/underscores are legal

    def test_cardinality_guard(self):
        reg = MetricsRegistry(max_label_sets=2)
        reg.counter("c_total", k="1")
        reg.counter("c_total", k="2")
        with pytest.raises(CardinalityError):
            reg.counter("c_total", k="3")
        # existing series stay addressable after the guard trips
        reg.counter("c_total", k="1").inc()

    def test_collect_and_families_deterministic(self):
        reg = MetricsRegistry()
        reg.gauge("z_gauge").set(1)
        reg.counter("a_total", route="b").inc()
        reg.counter("a_total", route="a").inc()
        names = [(s["name"], s["labels"]) for s in reg.collect()]
        assert names == [
            ("a_total", {"route": "a"}),
            ("a_total", {"route": "b"}),
            ("z_gauge", {}),
        ]

    def test_get_without_create(self):
        reg = MetricsRegistry()
        assert reg.get("absent") is None
        reg.counter("present_total", x="1")
        assert reg.get("present_total", x="1") is not None
        assert reg.get("present_total", x="2") is None

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.clear()
        assert len(reg) == 0

    def test_use_registry_swaps_global(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            get_registry().counter("scoped_total").inc()
        assert reg.counter("scoped_total").value == 1
        assert get_registry() is not reg

    def test_concurrent_counting_is_lossless(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        h = reg.histogram("lat", sample_cap=0)

        def worker():
            for _ in range(1000):
                c.inc()
                h.observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000
        assert h.count == 4000
