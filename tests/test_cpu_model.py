"""Tests for the CPU cost model and the xgbst-1/xgbst-40 runners."""

import numpy as np
import pytest

from repro import GBDTParams, GpuDevice, TITAN_X_PASCAL
from repro.cpu.model import CpuLedger, CpuOp, CpuTimeModel, translate_gpu_ledger
from repro.cpu.parallel_model import XGBoostCpuRunner, cpu_work_profile
from repro.gpusim.device import XEON_E5_2640V4_X2


class TestCpuOps:
    def test_record(self):
        led = CpuLedger()
        led.record("scan", 1000, streamed_bytes=8000, phase="find_split")
        assert led.total_elements == 1000
        assert led.total_bytes == 8000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CpuOp("x", elements=-1, flops_per_element=1, streamed_bytes=0,
                  random_bytes=0, phase="p")


class TestCpuTimeModel:
    def _op(self, **kw):
        base = dict(name="op", elements=10**7, flops_per_element=4.0,
                    streamed_bytes=8e7, random_bytes=1e7, phase="p", parallel=True)
        base.update(kw)
        return CpuOp(**base)

    def test_more_threads_is_faster(self):
        m = CpuTimeModel(XEON_E5_2640V4_X2)
        op = self._op()
        t1 = m.op_time(op, 1)
        t40 = m.op_time(op, 40)
        assert t40 < t1

    def test_scaling_in_papers_band(self):
        """Table II implies xgbst-1 / xgbst-40 around 6-12x."""
        m = CpuTimeModel(XEON_E5_2640V4_X2)
        led = CpuLedger()
        led.ops.append(self._op(elements=10**9, streamed_bytes=1.5e11, random_bytes=2.5e10))
        ratio = m.total_time(led, 1) / m.total_time(led, 40)
        assert 5.0 < ratio < 13.0

    def test_serial_ops_do_not_scale(self):
        m = CpuTimeModel(XEON_E5_2640V4_X2)
        op = self._op(parallel=False)
        assert m.op_time(op, 40) == m.op_time(op, 1)

    def test_amdahl_serial_fraction_limits_scaling(self):
        m = CpuTimeModel(XEON_E5_2640V4_X2)
        op = self._op(elements=10**10, streamed_bytes=8e10)
        t1, t40 = m.op_time(op, 1), m.op_time(op, 40)
        # can never beat 1/serial_fraction
        assert t1 / t40 < 1.0 / XEON_E5_2640V4_X2.serial_fraction

    def test_random_bytes_cost_more(self):
        m = CpuTimeModel(XEON_E5_2640V4_X2)
        a = m.op_time(self._op(streamed_bytes=1e8, random_bytes=0), 1)
        b = m.op_time(self._op(streamed_bytes=0, random_bytes=1e8), 1)
        assert b > a

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            CpuTimeModel().op_time(self._op(), 0)

    def test_phase_times_sum(self):
        m = CpuTimeModel()
        led = CpuLedger()
        led.record("a", 1000, streamed_bytes=1e6, phase="x")
        led.record("b", 1000, streamed_bytes=1e6, phase="y")
        per = m.phase_times(led, 4)
        assert sum(per.values()) == pytest.approx(m.total_time(led, 4))


class TestTranslate:
    def test_kernels_become_ops_transfers_dropped(self):
        d = GpuDevice(TITAN_X_PASCAL)
        with d.phase("find_split"):
            d.launch("k", elements=100, coalesced_bytes=800, irregular_bytes=80)
        d.transfer("upload", 1e9)
        led = translate_gpu_ledger(d.ledger)
        assert len(led.ops) == 1
        op = led.ops[0]
        assert op.elements == 100
        assert op.streamed_bytes == 800
        assert op.random_bytes == 80
        assert op.phase == "find_split"

    def test_scaled_work_carries_over(self):
        d = GpuDevice(TITAN_X_PASCAL, work_scale=7.0)
        d.launch("k", elements=10)
        led = translate_gpu_ledger(d.ledger)
        assert led.ops[0].elements == 70


class TestRunner:
    def test_profile_disables_rle(self):
        p = cpu_work_profile(GBDTParams())
        assert not p.use_rle
        assert p.use_smartgd

    def test_fit_then_model_times(self, covtype_small):
        ds = covtype_small
        runner = XGBoostCpuRunner(
            params=GBDTParams(n_trees=2, max_depth=3),
            work_scale=ds.work_scale, seg_scale=ds.seg_scale, row_scale=ds.row_scale,
        )
        model = runner.fit(ds.X, ds.y)
        assert model.n_trees == 2
        t1 = runner.modeled_seconds(1)
        t40 = runner.modeled_seconds(40)
        assert 0 < t40 < t1

    def test_parallel_overhead_dominates_tiny_workloads(self, covtype_small):
        """At unscaled (tiny) workloads the fork/join overhead makes many
        threads a net loss -- the reason thread counts are tuned per
        dataset (the paper swept 10/20/40/80 threads)."""
        ds = covtype_small
        runner = XGBoostCpuRunner(params=GBDTParams(n_trees=2, max_depth=3))
        runner.fit(ds.X, ds.y)
        assert runner.modeled_seconds(40) > runner.modeled_seconds(1) * 0.5

    def test_modeled_before_fit_raises(self):
        runner = XGBoostCpuRunner(params=GBDTParams(n_trees=1))
        with pytest.raises(RuntimeError):
            runner.modeled_seconds(1)

    def test_split_finding_dominates_cpu_profile(self, susy_small):
        """Section IV-A: ~75% of XGBoost time in finding the best split."""
        ds = susy_small
        runner = XGBoostCpuRunner(
            params=GBDTParams(n_trees=4, max_depth=5),
            work_scale=ds.work_scale, seg_scale=ds.seg_scale, row_scale=ds.row_scale,
        )
        runner.fit(ds.X, ds.y)
        per = runner.phase_seconds(40)
        assert per["find_split"] == max(per.values())

    def test_trees_equal_gpu_trainer(self, covtype_small):
        """xgbst trees == GPU-GBDT trees (the Table-II RMSE equality)."""
        from repro import GPUGBDTTrainer, models_equal

        ds = covtype_small
        p = GBDTParams(n_trees=3, max_depth=4)
        runner = XGBoostCpuRunner(params=p)
        cpu_model = runner.fit(ds.X, ds.y)
        gpu_model = GPUGBDTTrainer(p).fit(ds.X, ds.y)
        assert models_equal(cpu_model, gpu_model)


class TestThreadSweep:
    def test_forty_threads_is_the_sweet_spot(self, susy_small):
        """Section IV: 'using 40 threads results in the shortest execution
        time' on the 40-hardware-thread workstation; 80 oversubscribes."""
        ds = susy_small
        runner = XGBoostCpuRunner(
            params=GBDTParams(n_trees=3, max_depth=4),
            work_scale=ds.work_scale, seg_scale=ds.seg_scale, row_scale=ds.row_scale,
        )
        runner.fit(ds.X, ds.y)
        times = {t: runner.modeled_seconds(t) for t in (1, 10, 20, 40, 80)}
        assert min(times, key=times.get) in (20, 40)
        assert times[80] > times[40]
        assert times[10] < times[1]

    def test_sweep_experiment(self):
        from repro.bench.experiments import run_thread_sweep

        res = run_thread_sweep(quick=True)
        series = res.series["xgbst modeled seconds"]
        assert len(series) == 5
        i40 = res.xs.index(40)
        i80 = res.xs.index(80)
        assert series[i80] > series[i40]
